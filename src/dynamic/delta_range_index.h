// DeltaRangeIndex<Base> — the writable-index subsystem's core (Appendix
// D.1): an immutable learned (or classic) base index over a sorted key
// array, plus a DeltaBuffer of unmerged writes, behind the library-wide
// WritableRangeIndex contract.
//
//  * Reads serve from base + delta: Lookup stays exact lower_bound over
//    the live key set (base rank + delta rank adjustment, two binary
//    searches over the delta runs); Contains checks the delta first
//    (newest write wins) and falls back to the base; Scan merges the two
//    sorted views, applying tombstones.
//  * Writes go to the delta only. Each write resolves the key's base
//    membership once (one base lookup) and freezes it in the entry, which
//    is what keeps the rank arithmetic exact until the next merge.
//  * Merge() folds the delta into a fresh sorted array and retrains the
//    base — through the base's Rebuild() retrain-reuse hook when it has
//    one (the RMI reuses its stored config and leaf-table allocation),
//    otherwise via a transactional Build of a fresh base. Pluggable
//    policies (merge_policy.h) decide when writes trigger this
//    automatically.
//
// Base can be *any* RangeIndex with uint64/double/string keys — the same
// genericity seam the rest of the library builds on — so a learned RMI, a
// read-only B-Tree or a lookup table all become writable by wrapping.
//
// Durability (index::DurableIndex; docs/DURABILITY.md): with
// EnableDurability attached, every Insert/Erase appends a CRC-framed
// record to a write-ahead log *before* touching the delta, WriteSnapshot
// publishes the covered LSN and truncates the log behind it, and
// OpenSnapshot + RecoverFromWal replays the tail so a crashed writer
// resumes at its last acknowledged write instead of the last snapshot.

#ifndef LI_DYNAMIC_DELTA_RANGE_INDEX_H_
#define LI_DYNAMIC_DELTA_RANGE_INDEX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "dynamic/delta_buffer.h"
#include "dynamic/merge_policy.h"
#include "index/approx.h"
#include "index/range_index.h"
#include "index/snapshottable.h"
#include "index/writable_range_index.h"
#include "snapshot/snapshot.h"
#include "wal/wal.h"

namespace li::dynamic {

/// True when the base ships a retrain hook that reuses its stored config
/// (and internal allocations) instead of a from-scratch Build.
template <typename B>
concept HasRebuild =
    requires(B& base, std::span<const typename B::key_type> keys) {
      { base.Rebuild(keys) } -> std::same_as<Status>;
    };

template <index::RangeIndex Base>
class DeltaRangeIndex {
 public:
  using key_type = typename Base::key_type;
  using base_config_type = typename Base::config_type;

  struct Config {
    base_config_type base{};
    MergePolicy policy{};
    /// Active-run capacity of the delta buffer: larger absorbs write
    /// bursts cheaper, smaller keeps consolidation latency lower.
    size_t active_cap = 256;
  };
  using config_type = Config;

  DeltaRangeIndex() = default;
  // The base holds a span into base_keys_; copying would alias the source's
  // storage, moving keeps the heap buffer (and the span) stable.
  DeltaRangeIndex(const DeltaRangeIndex&) = delete;
  DeltaRangeIndex& operator=(const DeltaRangeIndex&) = delete;
  DeltaRangeIndex(DeltaRangeIndex&&) noexcept = default;
  DeltaRangeIndex& operator=(DeltaRangeIndex&&) noexcept = default;

  /// Builds the immutable base over `keys` (sorted, strictly increasing;
  /// copied — unlike raw bases, the wrapper owns its data because merges
  /// replace it) and starts with an empty delta.
  Status Build(std::span<const key_type> keys, const Config& config) {
    config_ = config;
    base_keys_.assign(keys.begin(), keys.end());
    delta_ = DeltaBuffer<key_type>(config.active_cap);
    stats_ = {};
    writes_since_merge_ = 0;
    reads_since_merge_ = 0;
    wal_.reset();
    wal_status_ = Status::OK();
    covered_lsn_ = 0;
    return base_.Build(std::span<const key_type>(base_keys_), config.base);
  }

  // ---- RangeIndex: reads over the live key set ----

  /// lower_bound rank over the live keys: #live keys < `key`.
  size_t Lookup(const key_type& key) const {
    ++stats_.lookups;
    ++reads_since_merge_;
    return RawLookup(key);
  }

  size_t LowerBound(const key_type& key) const { return Lookup(key); }

  index::Approx ApproxPos(const key_type& key) const {
    return index::Approx::Exact(RawLookup(key), size());
  }

  /// Batched rank lookups: routes the base part through the base's native
  /// batch path (the RMI software pipeline), then applies the delta rank
  /// adjustment per key — so with an empty delta this runs at base batch
  /// throughput.
  void LookupBatch(std::span<const key_type> keys,
                   std::span<size_t> out) const {
    index::LookupBatch(base_, keys, out);
    const size_t n = std::min(keys.size(), out.size());
    stats_.lookups += n;
    reads_since_merge_ += n;
    if (delta_.empty()) return;
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<size_t>(static_cast<int64_t>(out[i]) +
                                   delta_.RankAdjustBelow(keys[i]));
    }
  }

  /// Base overhead + delta memory. The delta counts in full: it is the
  /// price of writability, unlike the base data array which stays
  /// excluded per the library's index-overhead accounting.
  size_t SizeBytes() const { return base_.SizeBytes() + delta_.SizeBytes(); }

  // ---- WritableRangeIndex: the write path ----

  /// Buffers an insert; true iff `key` was not live before. With
  /// durability on, the WAL append happens first (log-then-apply).
  bool Insert(const key_type& key) {
    WalAppend(wal::WalRecordType::kInsert, key);
    ++stats_.inserts;
    ++writes_since_merge_;
    const auto prev = delta_.Find(key);
    const bool in_base = prev ? prev->in_base : BaseContains(key);
    const bool was_live = prev ? !prev->tombstone : in_base;
    delta_.Upsert(key, /*tombstone=*/false, in_base);
    MaybeMerge();
    return !was_live;
  }

  /// Buffers an erase (tombstone); true iff `key` was live before.
  bool Erase(const key_type& key) {
    WalAppend(wal::WalRecordType::kErase, key);
    ++stats_.erases;
    ++writes_since_merge_;
    const auto prev = delta_.Find(key);
    const bool in_base = prev ? prev->in_base : BaseContains(key);
    const bool was_live = prev ? !prev->tombstone : in_base;
    delta_.Upsert(key, /*tombstone=*/true, in_base);
    MaybeMerge();
    return was_live;
  }

  /// Membership over the live key set; the delta answers first.
  bool Contains(const key_type& key) const {
    ++stats_.lookups;
    ++stats_.contains;
    ++reads_since_merge_;
    if (const auto e = delta_.Find(key)) {
      ++stats_.delta_hits;
      return !e->tombstone;
    }
    return BaseContains(key);
  }

  /// Up to `limit` live keys >= `from`, ascending: a three-way merge of
  /// the base array and the two delta runs, tombstones dropped, delta
  /// entries shadowing equal base keys.
  std::vector<key_type> Scan(const key_type& from, size_t limit) const {
    std::vector<key_type> out;
    if (limit == 0) return out;
    // The number of live keys >= `from` is known exactly up front from
    // the rank prefix sums the delta maintains at consolidation time, so
    // the result buffer is reserved once — Scan performs exactly one
    // allocation (the returned vector), never a growth-doubling chain.
    size_t bi = base_.Lookup(from);
    const size_t start_rank = static_cast<size_t>(
        static_cast<int64_t>(bi) +
        (delta_.empty() ? 0 : delta_.RankAdjustBelow(from)));
    out.reserve(std::min(limit, size() - start_rank));
    // Streamed merge: base keys are drained up to each visited delta
    // entry, and the visit stops as soon as the window fills — O(limit)
    // work, not O(delta).
    delta_.VisitFrom(from, [&](const DeltaEntry<key_type>& e) {
      while (bi < base_keys_.size() && base_keys_[bi] < e.key &&
             out.size() < limit) {
        out.push_back(base_keys_[bi++]);
      }
      if (out.size() >= limit) return false;
      if (bi < base_keys_.size() && base_keys_[bi] == e.key) ++bi;
      if (!e.tombstone) out.push_back(e.key);
      return out.size() < limit;
    });
    while (bi < base_keys_.size() && out.size() < limit) {
      out.push_back(base_keys_[bi++]);
    }
    return out;
  }

  /// Live key count: base keys + net delta contribution.
  size_t size() const {
    return static_cast<size_t>(static_cast<int64_t>(base_keys_.size()) +
                               delta_.LiveAdjustTotal());
  }

  /// The Appendix-D.1 cycle: fold the delta into a fresh sorted base
  /// array, retrain the base, clear the delta. On failure the previous
  /// base and delta are left intact (the index stays consistent).
  Status Merge() {
    if (delta_.empty()) return Status::OK();
    Timer timer;
    std::vector<key_type> merged = MergedLiveKeys();
    if constexpr (HasRebuild<Base>) {
      // In-place retrain. On failure, restore the previous key array and
      // retrain over it (that configuration built successfully before),
      // so the index stays consistent — delta intact, in_base flags still
      // valid against the restored base.
      std::swap(base_keys_, merged);
      const Status s = base_.Rebuild(std::span<const key_type>(base_keys_));
      if (!s.ok()) {
        std::swap(base_keys_, merged);
        (void)base_.Rebuild(std::span<const key_type>(base_keys_));
        return s;
      }
    } else {
      Base fresh;
      LI_RETURN_IF_ERROR(
          fresh.Build(std::span<const key_type>(merged), config_.base));
      base_keys_ = std::move(merged);  // heap buffer (and span) unmoved
      base_ = std::move(fresh);
    }
    stats_.merged_keys += base_keys_.size();
    ++stats_.merges;
    stats_.last_merge_ns = timer.ElapsedNanos();
    stats_.total_merge_ns += stats_.last_merge_ns;
    delta_.Clear();
    writes_since_merge_ = 0;
    reads_since_merge_ = 0;
    return Status::OK();
  }

  index::WritableIndexStats Stats() const {
    index::WritableIndexStats s = stats_;
    s.delta_entries = delta_.entry_count();
    s.delta_bytes = delta_.SizeBytes();
    s.base_keys = base_keys_.size();
    return s;
  }

  const Base& base() const { return base_; }
  std::span<const key_type> base_keys() const { return base_keys_; }
  size_t delta_entries() const { return delta_.entry_count(); }
  const Config& config() const { return config_; }

  // ---- Persistence (index::Snapshottable; docs/PERSISTENCE.md) ----
  // Sections: the owned base key array (persisted once, the base model
  // loads against a span over the reopened copy — no retraining), the
  // base's model-only sections under "<prefix>base/", and the folded
  // delta as parallel key/flag arrays. The key array is *copied* on open
  // rather than mapped: merges replace it, so the wrapper stays writable
  // after restart.

  /// Snapshot support needs a flat key type and a base that can persist
  /// its model against a caller-owned key span (the RMI family).
  static constexpr bool kSnapshotCapable =
      std::is_trivially_copyable_v<key_type> &&
      index::DataSpanSnapshottable<Base>;

  Status WriteSections(snapshot::SnapshotWriter& writer,
                       const std::string& prefix) const {
    if constexpr (!kSnapshotCapable) {
      return Status::Unimplemented(
          "DeltaRangeIndex snapshots need a flat key type and a "
          "section-snapshottable base");
    } else {
      SnapshotCfg cfg;
      cfg.policy = config_.policy;
      cfg.active_cap = config_.active_cap;
      LI_RETURN_IF_ERROR(writer.AddPod(prefix + "cfg", cfg));
      if (wal_ != nullptr) {
        // Publish the durability watermark: this snapshot reflects every
        // WAL record up to and including last_lsn, so recovery replays
        // only what comes after, and WriteSnapshot truncates behind it.
        wal::WalSnapshotMeta meta;
        meta.covered_lsn = wal_->stats().last_lsn;
        snapshot_covered_lsn_ = meta.covered_lsn;
        LI_RETURN_IF_ERROR(writer.AddPod(prefix + "wal", meta));
      }
      LI_RETURN_IF_ERROR(
          writer.AddArray(prefix + "keys",
                          std::span<const key_type>(base_keys_),
                          snapshot::SectionKind::kKeys));
      LI_RETURN_IF_ERROR(
          base_.WriteSections(writer, prefix + "base/",
                              /*include_keys=*/false));
      std::vector<key_type> dkeys;
      std::vector<uint8_t> dmeta;
      dkeys.reserve(delta_.entry_count());
      dmeta.reserve(delta_.entry_count());
      delta_.VisitAll([&](const DeltaEntry<key_type>& e) {
        dkeys.push_back(e.key);
        dmeta.push_back(static_cast<uint8_t>((e.tombstone ? 1 : 0) |
                                             (e.in_base ? 2 : 0)));
        return true;
      });
      LI_RETURN_IF_ERROR(
          writer.AddArray(prefix + "dkeys", std::span<const key_type>(dkeys),
                          snapshot::SectionKind::kDelta));
      return writer.AddArray(prefix + "dmeta",
                             std::span<const uint8_t>(dmeta),
                             snapshot::SectionKind::kDelta);
    }
  }

  Status LoadSections(const snapshot::SnapshotReader& reader,
                      const std::string& prefix) {
    if constexpr (!kSnapshotCapable) {
      return Status::Unimplemented(
          "DeltaRangeIndex snapshots need a flat key type and a "
          "section-snapshottable base");
    } else {
      SnapshotCfg cfg;
      LI_RETURN_IF_ERROR(reader.GetPod(prefix + "cfg", &cfg));
      auto keys = reader.GetArray<key_type>(prefix + "keys");
      if (!keys.ok()) return keys.status();
      auto dkeys = reader.GetArray<key_type>(prefix + "dkeys");
      if (!dkeys.ok()) return dkeys.status();
      auto dmeta = reader.GetArray<uint8_t>(prefix + "dmeta");
      if (!dmeta.ok()) return dmeta.status();
      if (dkeys.value().size() != dmeta.value().size()) {
        return Status::InvalidArgument(
            "DeltaRangeIndex snapshot delta arrays disagree in size");
      }
      base_keys_.assign(keys.value().begin(), keys.value().end());
      LI_RETURN_IF_ERROR(
          base_.LoadSections(reader, prefix + "base/",
                             std::span<const key_type>(base_keys_)));
      std::vector<DeltaEntry<key_type>> entries;
      entries.reserve(dkeys.value().size());
      for (size_t i = 0; i < dkeys.value().size(); ++i) {
        const uint8_t m = dmeta.value()[i];
        if ((m & ~uint8_t{3}) != 0) {
          return Status::InvalidArgument(
              "DeltaRangeIndex snapshot delta flags are corrupt");
        }
        entries.push_back(DeltaEntry<key_type>{dkeys.value()[i],
                                               (m & 1) != 0, (m & 2) != 0});
      }
      wal::WalSnapshotMeta meta;  // absent in pre-durability snapshots
      const Status wal_meta = reader.GetPod(prefix + "wal", &meta);
      if (wal_meta.ok()) {
        covered_lsn_ = meta.covered_lsn;
      } else if (wal_meta.code() == StatusCode::kNotFound) {
        covered_lsn_ = 0;
      } else {
        return wal_meta;
      }
      wal_.reset();
      wal_status_ = Status::OK();
      config_.policy = cfg.policy;
      config_.active_cap = std::max<size_t>(cfg.active_cap, 2);
      if constexpr (requires {
                      {
                        base_.config()
                      } -> std::convertible_to<base_config_type>;
                    }) {
        config_.base = base_.config();
      }
      delta_ = DeltaBuffer<key_type>::FromSortedEntries(
          std::span<const DeltaEntry<key_type>>(entries), config_.active_cap);
      stats_ = {};
      writes_since_merge_ = 0;
      reads_since_merge_ = 0;
      last_auto_merge_status_ = Status::OK();
      return Status::OK();
    }
  }

  Status WriteSnapshot(const std::string& path) const {
    LI_RETURN_IF_ERROR(index::WriteSnapshotViaSections(*this, path));
    if (wal_ != nullptr) {
      // The snapshot file is published (fsync + rename), so the log can
      // be truncated behind the watermark it covers. A crash between the
      // two leaves a longer log; replay filters by covered LSN.
      return wal_->ResetTo(snapshot_covered_lsn_);
    }
    return Status::OK();
  }

  static Result<DeltaRangeIndex> OpenSnapshot(
      const std::string& path, const snapshot::OpenOptions& opts = {}) {
    return index::OpenSnapshotViaSections<DeltaRangeIndex>(path, opts);
  }

  /// Outcome of the most recent policy-triggered merge. Insert/Erase keep
  /// their boolean liveness contract, so a failed auto-merge (possible
  /// only with bases whose Build/Rebuild can fail) surfaces here; the
  /// index itself stays consistent either way (Merge is transactional).
  const Status& last_auto_merge_status() const {
    return last_auto_merge_status_;
  }

  // ---- Durability (index::DurableIndex; docs/DURABILITY.md) ----

  /// WAL support needs a flat key type (records carry the raw key bytes).
  static constexpr bool kDurabilityCapable =
      std::is_trivially_copyable_v<key_type>;

  /// Attach a fresh write-ahead log at cfg.path. Every subsequent
  /// Insert/Erase appends before applying. Call right after Build (or
  /// after a snapshot): writes made before enabling are only recoverable
  /// through a snapshot that contains them.
  Status EnableDurability(const wal::DurabilityConfig& cfg) {
    if constexpr (!kDurabilityCapable) {
      return Status::Unimplemented(
          "DeltaRangeIndex durability needs a flat key type");
    } else {
      if (wal_ != nullptr) {
        return Status::FailedPrecondition("durability already enabled");
      }
      auto w = wal::WalWriter::Create(cfg.path, covered_lsn_,
                                      sizeof(key_type), cfg);
      if (!w.ok()) return w.status();
      wal_ = std::make_unique<wal::WalWriter>(w.take());
      wal_status_ = Status::OK();
      return Status::OK();
    }
  }

  /// Replay the log at cfg.path on top of the current state (fresh Build
  /// or OpenSnapshot), applying records past the snapshot's covered LSN,
  /// then resume logging to the same file. A torn tail is truncated; a
  /// missing file starts a fresh log. Gap detection: a log whose records
  /// begin after the snapshot watermark is rejected.
  Status RecoverFromWal(const wal::DurabilityConfig& cfg) {
    if constexpr (!kDurabilityCapable) {
      return Status::Unimplemented(
          "DeltaRangeIndex durability needs a flat key type");
    } else {
      if (wal_ != nullptr) {
        return Status::FailedPrecondition("durability already enabled");
      }
      const uint64_t covered = covered_lsn_;
      auto replay = wal::Replay(
          cfg.path,
          [&](wal::WalRecordType type, uint64_t lsn, const void* payload,
              size_t len) -> Status {
            if (len != sizeof(key_type)) {
              return Status::InvalidArgument("WAL record size mismatch");
            }
            if (lsn <= covered) return Status::OK();  // snapshot has it
            key_type k;
            std::memcpy(&k, payload, sizeof(k));
            // wal_ is still null here, so these do not re-log.
            if (type == wal::WalRecordType::kInsert) {
              Insert(k);
            } else {
              Erase(k);
            }
            return Status::OK();
          });
      if (!replay.ok()) {
        if (replay.status().code() == StatusCode::kNotFound) {
          return EnableDurability(cfg);  // no log yet: start one
        }
        return replay.status();
      }
      if (replay.value().base_lsn > covered) {
        return Status::InvalidArgument(
            "WAL gap: log starts past the snapshot's covered LSN");
      }
      auto w = wal::WalWriter::Open(cfg.path, cfg, nullptr);
      if (!w.ok()) return w.status();
      wal_ = std::make_unique<wal::WalWriter>(w.take());
      wal_status_ = Status::OK();
      if (wal_->stats().last_lsn < covered) {
        // Stale log older than the snapshot: rotate so LSNs cannot
        // regress below the watermark.
        LI_RETURN_IF_ERROR(wal_->ResetTo(covered));
      }
      covered_lsn_ = wal_->stats().last_lsn;
      return Status::OK();
    }
  }

  bool durable() const { return wal_ != nullptr; }

  /// Sticky status of the logging path: an append failure poisons the
  /// log (the in-memory index keeps serving, but durability is lost
  /// until re-enabled), and callers that need ack-implies-durable check
  /// this after writes.
  const Status& wal_status() const { return wal_status_; }

  wal::WalStats DurabilityStats() const {
    return wal_ != nullptr ? wal_->stats() : wal::WalStats{};
  }

  /// Flush the group-commit window now (e.g. before a clean shutdown).
  Status SyncWal() { return wal_ != nullptr ? wal_->Sync() : Status::OK(); }

 private:
  struct SnapshotCfg {
    MergePolicy policy{};
    uint64_t active_cap = 256;
  };
  static_assert(std::is_trivially_copyable_v<MergePolicy>,
                "MergePolicy is persisted verbatim in snapshots");

  bool BaseContains(const key_type& key) const {
    return index::ContainsViaLookup(
        base_, std::span<const key_type>(base_keys_), key);
  }

  size_t RawLookup(const key_type& key) const {
    const int64_t rank = static_cast<int64_t>(base_.Lookup(key)) +
                         (delta_.empty() ? 0 : delta_.RankAdjustBelow(key));
    return static_cast<size_t>(rank);
  }

  void WalAppend(wal::WalRecordType type, const key_type& key) {
    if (wal_ == nullptr) return;
    if constexpr (kDurabilityCapable) {
      auto r = wal_->Append(type, &key, sizeof(key));
      if (!r.ok()) wal_status_ = r.status();
    }
  }

  void MaybeMerge() {
    if (ShouldMerge(config_.policy, delta_.entry_count(), base_keys_.size(),
                    writes_since_merge_, reads_since_merge_)) {
      last_auto_merge_status_ = Merge();
    }
  }

  /// The merged live key set: base keys + delta inserts - tombstones.
  std::vector<key_type> MergedLiveKeys() const {
    return MergeLiveKeys(std::span<const key_type>(base_keys_), delta_);
  }

  Config config_{};
  std::vector<key_type> base_keys_;  // the immutable base's data, owned
  Base base_{};
  DeltaBuffer<key_type> delta_{};
  mutable index::WritableIndexStats stats_{};
  mutable uint64_t writes_since_merge_ = 0;
  mutable uint64_t reads_since_merge_ = 0;
  Status last_auto_merge_status_{};
  // mutable: WriteSnapshot is const but truncates the log after publish.
  mutable std::unique_ptr<wal::WalWriter> wal_;
  Status wal_status_{};
  uint64_t covered_lsn_ = 0;  // watermark inherited from OpenSnapshot
  mutable uint64_t snapshot_covered_lsn_ = 0;  // stashed by WriteSections
};

}  // namespace li::dynamic

#endif  // LI_DYNAMIC_DELTA_RANGE_INDEX_H_
