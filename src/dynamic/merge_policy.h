// When to fold the delta into the base (Appendix D.1: "from time to time
// merged with a potential retraining of the model"). Merge timing is a
// classic LSM/Bigtable knob, so it is pluggable rather than hard-coded:
//
//  * kSizeThreshold — merge when the delta holds more than a bounded
//    number of entries (absolute cap, or a fraction of the base, whichever
//    bound is tighter). Keeps lookup overhead proportional to the bound.
//  * kWriteRatio    — merge during read-mostly lulls: once the delta has
//    accumulated at least `min_delta_entries`, trigger when the write
//    fraction of the ops since the last merge drops below `write_ratio`
//    (a merge in the middle of a write burst would be redone immediately;
//    deferring it to a read-heavy phase amortizes the retrain where the
//    delta penalty is actually being paid).
//  * kManual        — never auto-merge; the caller invokes Merge().

#ifndef LI_DYNAMIC_MERGE_POLICY_H_
#define LI_DYNAMIC_MERGE_POLICY_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace li::dynamic {

enum class MergeTrigger { kSizeThreshold, kWriteRatio, kManual };

struct MergePolicy {
  MergeTrigger trigger = MergeTrigger::kSizeThreshold;

  /// kSizeThreshold: absolute cap on buffered delta entries.
  size_t max_delta_entries = 64 * 1024;
  /// kSizeThreshold: cap as a fraction of the base key count (the tighter
  /// of the two bounds wins, floored at `min_delta_entries` so tiny bases
  /// don't merge on every write).
  double max_delta_fraction = 0.10;

  /// kWriteRatio: write-fraction threshold below which a pending merge
  /// fires, and the minimum delta size that arms it.
  double write_ratio = 0.5;
  size_t min_delta_entries = 4096;
};

/// Pure decision function (exposed for unit tests): should the index merge
/// now, given the delta pressure and the ops observed since the last merge?
inline bool ShouldMerge(const MergePolicy& policy, size_t delta_entries,
                        size_t base_keys, uint64_t writes_since_merge,
                        uint64_t reads_since_merge) {
  switch (policy.trigger) {
    case MergeTrigger::kManual:
      return false;
    case MergeTrigger::kSizeThreshold: {
      const size_t frac_cap = static_cast<size_t>(
          policy.max_delta_fraction * static_cast<double>(base_keys));
      const size_t threshold =
          std::max(policy.min_delta_entries,
                   std::min(policy.max_delta_entries, frac_cap));
      return delta_entries >= threshold;
    }
    case MergeTrigger::kWriteRatio: {
      if (delta_entries < policy.min_delta_entries) return false;
      const uint64_t ops = writes_since_merge + reads_since_merge;
      if (ops == 0) return false;
      const double write_frac = static_cast<double>(writes_since_merge) /
                                static_cast<double>(ops);
      return write_frac < policy.write_ratio;
    }
  }
  return false;
}

}  // namespace li::dynamic

#endif  // LI_DYNAMIC_MERGE_POLICY_H_
