// The delta structure behind DeltaRangeIndex: buffered writes as sorted-
// vector runs (Appendix D.1's insert buffer). Two runs are kept:
//
//  * `active_`  — a small sorted insertion buffer (bounded by
//    `active_cap`), absorbing every Upsert with an O(cap) memmove;
//  * `keys_`/.. — one large consolidated sorted run, deduplicated to the
//    newest write per key. When the active run fills it is merged in
//    (amortized O(consolidated / cap) per write).
//
// The newest write per key wins: an active entry shadows a consolidated
// one with the same key.
//
// Rank bookkeeping is what makes the wrapping index's Lookup exact and
// O(log) instead of a delta scan: every entry carries its *rank
// contribution* relative to the immutable base — +1 for an insert of a
// key absent from the base, -1 for an erase of a base key, 0 otherwise
// (re-insert of a base key, erase of a never-present key). Both runs keep
// prefix sums of contributions, so
//   #live keys < k  =  base.lower_bound(k) + RankAdjustBelow(k)
// costs two binary searches and two prefix reads. An active entry that
// shadows a consolidated one stores the shadowed contribution and
// subtracts it, so nothing is double-counted.

#ifndef LI_DYNAMIC_DELTA_BUFFER_H_
#define LI_DYNAMIC_DELTA_BUFFER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace li::dynamic {

/// The newest buffered write for one key, as seen by consumers (the
/// wrapping index's Contains/Scan/Merge).
template <typename Key>
struct DeltaEntry {
  Key key{};
  bool tombstone = false;  // Erase vs Insert
  bool in_base = false;    // key was present in the base at upsert time
};

template <typename Key>
class DeltaBuffer {
 public:
  explicit DeltaBuffer(size_t active_cap = 256)
      : active_cap_(std::max<size_t>(active_cap, 2)) {}

  /// +1 / -1 / 0 rank contribution of a write against the immutable base.
  static int8_t Contribution(bool tombstone, bool in_base) {
    if (tombstone) return in_base ? int8_t{-1} : int8_t{0};
    return in_base ? int8_t{0} : int8_t{1};
  }

  /// Records the newest write for `key`. `in_base` must be the key's
  /// membership in the *current immutable base* (frozen until the next
  /// merge clears this buffer, so it never goes stale).
  void Upsert(const Key& key, bool tombstone, bool in_base) {
    const int8_t own = Contribution(tombstone, in_base);
    size_t a = LowerBoundActive(key);
    if (a < active_keys_.size() && active_keys_[a] == key) {
      active_meta_[a].own_c = own;
      active_meta_[a].tombstone = tombstone;
      RebuildActivePrefixFrom(a);
      return;
    }
    int8_t shadow = 0;
    const size_t c = LowerBoundConsolidated(key);
    if (c < keys_.size() && keys_[c] == key) {
      shadow = Contribution(meta_[c].tombstone, meta_[c].in_base);
    }
    active_keys_.insert(active_keys_.begin() + static_cast<ptrdiff_t>(a),
                        key);
    active_meta_.insert(active_meta_.begin() + static_cast<ptrdiff_t>(a),
                        ActiveMeta{own, shadow, tombstone, in_base});
    RebuildActivePrefixFrom(a);
    if (active_keys_.size() >= active_cap_) Consolidate();
  }

  /// The newest buffered write for `key`, if any.
  std::optional<DeltaEntry<Key>> Find(const Key& key) const {
    const size_t a = LowerBoundActive(key);
    if (a < active_keys_.size() && active_keys_[a] == key) {
      return DeltaEntry<Key>{key, active_meta_[a].tombstone,
                             active_meta_[a].in_base};
    }
    const size_t c = LowerBoundConsolidated(key);
    if (c < keys_.size() && keys_[c] == key) {
      return DeltaEntry<Key>{key, meta_[c].tombstone, meta_[c].in_base};
    }
    return std::nullopt;
  }

  /// Net rank contribution of all buffered writes on keys strictly below
  /// `key` — see the header comment for why this makes Lookup exact.
  int64_t RankAdjustBelow(const Key& key) const {
    const size_t c = LowerBoundConsolidated(key);
    const size_t a = LowerBoundActive(key);
    return static_cast<int64_t>(prefix_[c]) +
           static_cast<int64_t>(active_prefix_[a]);
  }

  /// Net rank contribution of the whole buffer: live key count is
  /// base_keys + LiveAdjustTotal().
  int64_t LiveAdjustTotal() const {
    return static_cast<int64_t>(prefix_.back()) +
           static_cast<int64_t>(active_prefix_.back());
  }

  /// Distinct keys with a buffered write (the merge-policy pressure gauge).
  size_t entry_count() const { return keys_.size() + active_keys_.size(); }
  bool empty() const { return entry_count() == 0; }

  size_t SizeBytes() const {
    return keys_.capacity() * sizeof(Key) +
           meta_.capacity() * sizeof(Meta) +
           prefix_.capacity() * sizeof(int32_t) +
           active_keys_.capacity() * sizeof(Key) +
           active_meta_.capacity() * sizeof(ActiveMeta) +
           active_prefix_.capacity() * sizeof(int32_t);
  }

  void Clear() {
    keys_.clear();
    meta_.clear();
    prefix_.assign(1, 0);
    active_keys_.clear();
    active_meta_.clear();
    active_prefix_.assign(1, 0);
  }

  /// Visits buffered writes with key >= `lo` in ascending key order, the
  /// newest write per key (active shadows consolidated). `fn` returns
  /// false to stop early.
  template <typename Fn>
  void VisitFrom(const Key& lo, Fn&& fn) const {
    Visit(LowerBoundConsolidated(lo), LowerBoundActive(lo),
          std::forward<Fn>(fn));
  }

  /// Visits every buffered write in ascending key order.
  template <typename Fn>
  void VisitAll(Fn&& fn) const {
    Visit(0, 0, std::forward<Fn>(fn));
  }

  /// Immutable-snapshot handoff for the concurrent layer: bulk-loads
  /// `entries` (ascending keys, one newest write per key, `in_base`
  /// relative to whatever base the caller pairs this buffer with)
  /// straight into the consolidated run with its prefix sums — no per-key
  /// Upserts, no active run. The result is a fully functional buffer; the
  /// concurrent index publishes it as the frozen half of a state version
  /// and never mutates it again.
  static DeltaBuffer FromSortedEntries(
      std::span<const DeltaEntry<Key>> entries, size_t active_cap = 256) {
    DeltaBuffer buf(active_cap);
    buf.keys_.reserve(entries.size());
    buf.meta_.reserve(entries.size());
    buf.prefix_.resize(entries.size() + 1);
    buf.prefix_[0] = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      const DeltaEntry<Key>& e = entries[i];
      buf.keys_.push_back(e.key);
      buf.meta_.push_back(Meta{e.tombstone, e.in_base});
      buf.prefix_[i + 1] =
          buf.prefix_[i] + Contribution(e.tombstone, e.in_base);
    }
    return buf;
  }

 private:
  template <typename Fn>
  void Visit(size_t c, size_t a, Fn&& fn) const {
    while (c < keys_.size() || a < active_keys_.size()) {
      const bool take_active =
          a < active_keys_.size() &&
          (c >= keys_.size() || !(keys_[c] < active_keys_[a]));
      if (take_active && c < keys_.size() && keys_[c] == active_keys_[a]) {
        ++c;  // shadowed consolidated entry
      }
      DeltaEntry<Key> e;
      if (take_active) {
        e = DeltaEntry<Key>{active_keys_[a], active_meta_[a].tombstone,
                            active_meta_[a].in_base};
        ++a;
      } else {
        e = DeltaEntry<Key>{keys_[c], meta_[c].tombstone, meta_[c].in_base};
        ++c;
      }
      if (!fn(e)) return;
    }
  }

  struct Meta {
    bool tombstone = false;
    bool in_base = false;
  };
  struct ActiveMeta {
    int8_t own_c = 0;     // this write's contribution
    int8_t shadow_c = 0;  // contribution of the consolidated entry it hides
    bool tombstone = false;
    bool in_base = false;
  };

  size_t LowerBoundConsolidated(const Key& key) const {
    return static_cast<size_t>(
        std::lower_bound(keys_.begin(), keys_.end(), key) - keys_.begin());
  }
  size_t LowerBoundActive(const Key& key) const {
    return static_cast<size_t>(
        std::lower_bound(active_keys_.begin(), active_keys_.end(), key) -
        active_keys_.begin());
  }

  /// active_prefix_[i] = sum over active entries j < i of (own - shadow).
  /// Rebuilding the suffix costs O(cap), the same as the vector insert
  /// that triggered it.
  void RebuildActivePrefixFrom(size_t from) {
    active_prefix_.resize(active_keys_.size() + 1);
    for (size_t i = from; i < active_keys_.size(); ++i) {
      active_prefix_[i + 1] =
          active_prefix_[i] +
          (active_meta_[i].own_c - active_meta_[i].shadow_c);
    }
  }

  /// Merges the active run into the consolidated one (newest write wins)
  /// and rebuilds the consolidated prefix sums.
  void Consolidate() {
    std::vector<Key> merged_keys;
    std::vector<Meta> merged_meta;
    merged_keys.reserve(keys_.size() + active_keys_.size());
    merged_meta.reserve(keys_.size() + active_keys_.size());
    size_t c = 0, a = 0;
    while (c < keys_.size() || a < active_keys_.size()) {
      const bool take_active =
          a < active_keys_.size() &&
          (c >= keys_.size() || !(keys_[c] < active_keys_[a]));
      if (take_active) {
        if (c < keys_.size() && keys_[c] == active_keys_[a]) ++c;
        merged_keys.push_back(active_keys_[a]);
        merged_meta.push_back(
            Meta{active_meta_[a].tombstone, active_meta_[a].in_base});
        ++a;
      } else {
        merged_keys.push_back(keys_[c]);
        merged_meta.push_back(meta_[c]);
        ++c;
      }
    }
    keys_ = std::move(merged_keys);
    meta_ = std::move(merged_meta);
    prefix_.resize(keys_.size() + 1);
    prefix_[0] = 0;
    for (size_t i = 0; i < keys_.size(); ++i) {
      prefix_[i + 1] =
          prefix_[i] + Contribution(meta_[i].tombstone, meta_[i].in_base);
    }
    active_keys_.clear();
    active_meta_.clear();
    active_prefix_.assign(1, 0);
  }

  size_t active_cap_;
  // Consolidated run (struct-of-arrays for binary-search locality).
  std::vector<Key> keys_;
  std::vector<Meta> meta_;
  std::vector<int32_t> prefix_{0};  // size keys_.size() + 1
  // Active run.
  std::vector<Key> active_keys_;
  std::vector<ActiveMeta> active_meta_;
  std::vector<int32_t> active_prefix_{0};  // size active_keys_.size() + 1
};

/// The merged live key set: `base` ∪ delta-inserts ∖ delta-tombstones,
/// ascending, one copy per key (a delta entry shadows an equal base
/// key). The ONE definition of the Appendix-D.1 merge-step key fold,
/// shared by DeltaRangeIndex::Merge and the concurrent merge worker —
/// the duplicate-key regression suite pins its semantics once for both.
template <typename Key>
std::vector<Key> MergeLiveKeys(std::span<const Key> base,
                               const DeltaBuffer<Key>& delta) {
  std::vector<Key> merged;
  merged.reserve(base.size() + delta.entry_count());
  size_t bi = 0;
  delta.VisitAll([&](const DeltaEntry<Key>& e) {
    while (bi < base.size() && base[bi] < e.key) {
      merged.push_back(base[bi++]);
    }
    if (bi < base.size() && base[bi] == e.key) ++bi;  // one copy only
    if (!e.tombstone) merged.push_back(e.key);
    return true;
  });
  while (bi < base.size()) merged.push_back(base[bi++]);
  return merged;
}

}  // namespace li::dynamic

#endif  // LI_DYNAMIC_DELTA_BUFFER_H_
