// Multi-dimensional learned index (§7 "Multi-Dimensional Indexes", future
// work): 2-D points are linearized along a z-order curve, a 2-stage RMI
// learns the CDF of the curve offsets, and rectangle queries walk the
// curve with BIGMIN skipping — each seek served by the learned index
// instead of a tree descent. A uniform-grid index provides the
// conventional baseline.

#ifndef LI_MDIM_MDIM_INDEX_H_
#define LI_MDIM_MDIM_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "mdim/morton.h"
#include "rmi/rmi.h"

namespace li::mdim {

struct Point {
  uint32_t x = 0;
  uint32_t y = 0;
};

struct Rect {  // inclusive bounds
  uint32_t x0 = 0, y0 = 0, x1 = 0, y1 = 0;
};

/// Learned z-order index over 2-D points.
class LearnedZIndex {
 public:
  LearnedZIndex() = default;

  /// Sorts points in z-order internally; the caller's vector is copied.
  Status Build(std::span<const Point> points, size_t num_leaf_models = 4096);

  /// All points inside `rect` (inclusive), in z-order.
  void RangeQuery(const Rect& rect, std::vector<Point>* out) const;

  /// Point-existence probe.
  bool Contains(Point p) const;

  size_t size() const { return codes_.size(); }
  size_t SizeBytes() const { return rmi_.SizeBytes(); }
  /// Number of learned-index seeks performed by the last RangeQuery (the
  /// query-cost metric a tree baseline would count node traversals for).
  size_t last_query_seeks() const { return last_seeks_; }

 private:
  std::vector<uint64_t> codes_;  // z-order sorted
  rmi::Rmi<models::LinearModel> rmi_;
  mutable size_t last_seeks_ = 0;
};

/// Conventional uniform-grid spatial index baseline.
class GridIndex {
 public:
  GridIndex() = default;

  Status Build(std::span<const Point> points, uint32_t cells_per_dim = 256);

  void RangeQuery(const Rect& rect, std::vector<Point>* out) const;
  bool Contains(Point p) const;

  size_t size() const { return points_.size(); }
  /// Directory + bucket-offset overhead (points themselves excluded, like
  /// the range-index size accounting).
  size_t SizeBytes() const {
    return offsets_.size() * sizeof(uint32_t) + 2 * sizeof(double);
  }

 private:
  uint32_t CellOf(uint32_t x, uint32_t y) const;

  uint32_t cells_per_dim_ = 0;
  double scale_x_ = 0.0, scale_y_ = 0.0;
  uint32_t max_x_ = 0, max_y_ = 0;
  std::vector<uint32_t> offsets_;  // cell -> start in points_
  std::vector<Point> points_;      // grouped by cell
};

}  // namespace li::mdim

#endif  // LI_MDIM_MDIM_INDEX_H_
