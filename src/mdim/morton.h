// 2-D Morton (z-order) encoding and the LITMAX/BIGMIN range-splitting
// primitives — the substrate for the multi-dimensional learned index
// (§7 "Multi-Dimensional Indexes"): mapping points onto a space-filling
// curve linearizes them so a CDF model over the curve offsets can predict
// positions, and BIGMIN lets range scans skip the curve's excursions
// outside the query rectangle.

#ifndef LI_MDIM_MORTON_H_
#define LI_MDIM_MORTON_H_

#include <cstdint>

namespace li::mdim {

/// Spreads the 32 bits of x into the even bit positions of a 64-bit word.
inline uint64_t SpreadBits(uint32_t x) {
  uint64_t v = x;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFULL;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFULL;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  v = (v | (v << 2)) & 0x3333333333333333ULL;
  v = (v | (v << 1)) & 0x5555555555555555ULL;
  return v;
}

/// Inverse of SpreadBits.
inline uint32_t CompactBits(uint64_t v) {
  v &= 0x5555555555555555ULL;
  v = (v | (v >> 1)) & 0x3333333333333333ULL;
  v = (v | (v >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  v = (v | (v >> 4)) & 0x00FF00FF00FF00FFULL;
  v = (v | (v >> 8)) & 0x0000FFFF0000FFFFULL;
  v = (v | (v >> 16)) & 0x00000000FFFFFFFFULL;
  return static_cast<uint32_t>(v);
}

/// Interleaves (x, y) into a z-order code: x in even bits, y in odd bits.
inline uint64_t MortonEncode(uint32_t x, uint32_t y) {
  return SpreadBits(x) | (SpreadBits(y) << 1);
}

inline void MortonDecode(uint64_t code, uint32_t* x, uint32_t* y) {
  *x = CompactBits(code);
  *y = CompactBits(code >> 1);
}

/// True iff the point encoded by `code` lies inside the rectangle
/// [min_code, max_code] interpreted dimension-wise.
inline bool MortonInRect(uint64_t code, uint64_t min_code, uint64_t max_code) {
  const uint64_t kEven = 0x5555555555555555ULL;
  const uint64_t kOdd = ~kEven;
  return (code & kEven) >= (min_code & kEven) &&
         (code & kEven) <= (max_code & kEven) &&
         (code & kOdd) >= (min_code & kOdd) &&
         (code & kOdd) <= (max_code & kOdd);
}

/// BIGMIN (Tropf & Herzog): the smallest z-code > `code` that lies inside
/// the query rectangle [min_code, max_code]. Used to skip curve segments
/// that left the rectangle. Returns 0 and sets *valid=false when no such
/// code exists.
inline uint64_t BigMin(uint64_t code, uint64_t min_code, uint64_t max_code,
                       bool* valid) {
  uint64_t bigmin = 0;
  *valid = false;
  // Walk bits from the most significant; maintain working copies of the
  // rectangle bounds that are refined as decisions fix high bits.
  uint64_t wmin = min_code, wmax = max_code;
  for (int bit = 63; bit >= 0; --bit) {
    const uint64_t mask = uint64_t{1} << bit;
    // Dimension-local masks for loading/storing partial bounds: for bit b,
    // the same dimension occupies b, b-2, b-4, ...
    const uint64_t dim_mask = (bit % 2 == 0) ? 0x5555555555555555ULL
                                             : 0xAAAAAAAAAAAAAAAAULL;
    const uint64_t low_dim_bits = dim_mask & (mask - 1);
    const unsigned z_bit = (code & mask) ? 1 : 0;
    const unsigned min_bit = (wmin & mask) ? 1 : 0;
    const unsigned max_bit = (wmax & mask) ? 1 : 0;
    const unsigned state = (z_bit << 2) | (min_bit << 1) | max_bit;
    switch (state) {
      case 0b000:  // equal everywhere: continue
        break;
      case 0b001:  // z=0, min=0, max=1
        bigmin = (wmin & ~(mask | low_dim_bits)) | mask;
        *valid = true;
        // max := 0111... in this dimension below `bit`
        wmax = (wmax & ~(mask | low_dim_bits)) | low_dim_bits;
        break;
      case 0b011:  // z=0, min=1: the whole remaining range is > code
        *valid = true;
        return wmin;
      case 0b100:  // z=1, min=0, max=0: range exhausted below code
        return *valid ? bigmin : 0;
      case 0b101:  // z=1, min=0, max=1
        // min := 1000... in this dimension at `bit`
        wmin = (wmin & ~(mask | low_dim_bits)) | mask;
        break;
      case 0b111:  // all ones: continue
        break;
      default:
        // min=1, max=0 within a dimension cannot happen for a valid rect.
        return *valid ? bigmin : 0;
    }
  }
  return *valid ? bigmin : 0;
}

}  // namespace li::mdim

#endif  // LI_MDIM_MORTON_H_
