#include "mdim/mdim_index.h"

#include <algorithm>
#include <cmath>

namespace li::mdim {

Status LearnedZIndex::Build(std::span<const Point> points,
                            size_t num_leaf_models) {
  codes_.clear();
  codes_.reserve(points.size());
  for (const Point& p : points) codes_.push_back(MortonEncode(p.x, p.y));
  std::sort(codes_.begin(), codes_.end());
  codes_.erase(std::unique(codes_.begin(), codes_.end()), codes_.end());
  rmi::RmiConfig config;
  config.num_leaf_models = std::max<size_t>(16, num_leaf_models);
  return rmi_.Build(codes_, config);
}

bool LearnedZIndex::Contains(Point p) const {
  const uint64_t code = MortonEncode(p.x, p.y);
  return rmi_.Contains(code);
}

void LearnedZIndex::RangeQuery(const Rect& rect, std::vector<Point>* out) const {
  out->clear();
  last_seeks_ = 0;
  if (codes_.empty()) return;
  const uint64_t zmin = MortonEncode(rect.x0, rect.y0);
  const uint64_t zmax = MortonEncode(rect.x1, rect.y1);

  uint64_t cursor = zmin;
  while (true) {
    // Learned seek: first curve offset >= cursor.
    size_t idx = rmi_.LowerBound(cursor);
    ++last_seeks_;
    // Consume the in-rectangle run; on the first code outside the
    // rectangle, BIGMIN-jump past the excursion.
    bool jumped = false;
    for (; idx < codes_.size() && codes_[idx] <= zmax; ++idx) {
      const uint64_t code = codes_[idx];
      if (MortonInRect(code, zmin, zmax)) {
        Point p;
        MortonDecode(code, &p.x, &p.y);
        out->push_back(p);
      } else {
        bool valid = false;
        const uint64_t next = BigMin(code, zmin, zmax, &valid);
        if (!valid) return;  // nothing inside the rect beyond this point
        cursor = next;
        jumped = true;
        break;
      }
    }
    if (!jumped) return;  // ran past zmax or off the end
  }
}

uint32_t GridIndex::CellOf(uint32_t x, uint32_t y) const {
  const uint32_t cx = std::min(
      cells_per_dim_ - 1, static_cast<uint32_t>(x * scale_x_));
  const uint32_t cy = std::min(
      cells_per_dim_ - 1, static_cast<uint32_t>(y * scale_y_));
  return cy * cells_per_dim_ + cx;
}

Status GridIndex::Build(std::span<const Point> points,
                        uint32_t cells_per_dim) {
  if (cells_per_dim == 0) {
    return Status::InvalidArgument("GridIndex: cells_per_dim == 0");
  }
  cells_per_dim_ = cells_per_dim;
  max_x_ = max_y_ = 0;
  for (const Point& p : points) {
    max_x_ = std::max(max_x_, p.x);
    max_y_ = std::max(max_y_, p.y);
  }
  scale_x_ = static_cast<double>(cells_per_dim_) /
             (static_cast<double>(max_x_) + 1.0);
  scale_y_ = static_cast<double>(cells_per_dim_) /
             (static_cast<double>(max_y_) + 1.0);

  const size_t num_cells = static_cast<size_t>(cells_per_dim_) * cells_per_dim_;
  std::vector<uint32_t> counts(num_cells + 1, 0);
  for (const Point& p : points) ++counts[CellOf(p.x, p.y) + 1];
  for (size_t c = 0; c < num_cells; ++c) counts[c + 1] += counts[c];
  offsets_ = counts;
  points_.resize(points.size());
  std::vector<uint32_t> cursor(counts.begin(), counts.end() - 1);
  for (const Point& p : points) points_[cursor[CellOf(p.x, p.y)]++] = p;
  return Status::OK();
}

bool GridIndex::Contains(Point p) const {
  if (offsets_.empty()) return false;
  const uint32_t cell = CellOf(p.x, p.y);
  for (uint32_t i = offsets_[cell]; i < offsets_[cell + 1]; ++i) {
    if (points_[i].x == p.x && points_[i].y == p.y) return true;
  }
  return false;
}

void GridIndex::RangeQuery(const Rect& rect, std::vector<Point>* out) const {
  out->clear();
  if (offsets_.empty()) return;
  const uint32_t cx0 = std::min(cells_per_dim_ - 1,
                                static_cast<uint32_t>(rect.x0 * scale_x_));
  const uint32_t cx1 = std::min(cells_per_dim_ - 1,
                                static_cast<uint32_t>(rect.x1 * scale_x_));
  const uint32_t cy0 = std::min(cells_per_dim_ - 1,
                                static_cast<uint32_t>(rect.y0 * scale_y_));
  const uint32_t cy1 = std::min(cells_per_dim_ - 1,
                                static_cast<uint32_t>(rect.y1 * scale_y_));
  for (uint32_t cy = cy0; cy <= cy1; ++cy) {
    for (uint32_t cx = cx0; cx <= cx1; ++cx) {
      const uint32_t cell = cy * cells_per_dim_ + cx;
      for (uint32_t i = offsets_[cell]; i < offsets_[cell + 1]; ++i) {
        const Point& p = points_[i];
        if (p.x >= rect.x0 && p.x <= rect.x1 && p.y >= rect.y0 &&
            p.y <= rect.y1) {
          out->push_back(p);
        }
      }
    }
  }
}

}  // namespace li::mdim
