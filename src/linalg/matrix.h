// Small dense matrix / vector types plus the Cholesky-based normal-equation
// solver used to fit multivariate linear regression models in closed form
// (paper §3.7.1 "multivariate linear regression ... learned optimally").
//
// These are deliberately tiny (feature dimensionality <= ~16); no BLAS
// dependency is needed or wanted.

#ifndef LI_LINALG_MATRIX_H_
#define LI_LINALG_MATRIX_H_

#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/status.h"

namespace li::linalg {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const std::vector<double>& data() const { return data_; }

  /// this^T * this, producing a cols x cols Gram matrix.
  Matrix Gram() const {
    Matrix g(cols_, cols_);
    for (size_t r = 0; r < rows_; ++r) {
      const double* row = &data_[r * cols_];
      for (size_t i = 0; i < cols_; ++i) {
        const double ri = row[i];
        if (ri == 0.0) continue;
        for (size_t j = i; j < cols_; ++j) {
          g(i, j) += ri * row[j];
        }
      }
    }
    for (size_t i = 0; i < cols_; ++i)
      for (size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
    return g;
  }

 private:
  size_t rows_, cols_;
  std::vector<double> data_;
};

/// In-place Cholesky factorization of a symmetric positive-definite matrix.
/// Returns false if the matrix is not (numerically) positive definite.
bool CholeskyFactor(Matrix* a);

/// Solves A x = b for SPD A via Cholesky, with diagonal ridge regularization
/// retried on failure. `b` has one entry per row of A.
Status CholeskySolve(Matrix a, std::vector<double> b, std::vector<double>* x);

/// Ordinary least squares: finds w minimizing ||X w - y||^2 via the normal
/// equations (X^T X + ridge I) w = X^T y.
Status LeastSquares(const Matrix& x, const std::vector<double>& y,
                    std::vector<double>* w, double ridge = 1e-9);

}  // namespace li::linalg

#endif  // LI_LINALG_MATRIX_H_
