#include "linalg/matrix.h"

#include <algorithm>

namespace li::linalg {

bool CholeskyFactor(Matrix* a) {
  const size_t n = a->rows();
  assert(a->cols() == n);
  Matrix& m = *a;
  for (size_t j = 0; j < n; ++j) {
    double d = m(j, j);
    for (size_t k = 0; k < j; ++k) d -= m(j, k) * m(j, k);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    m(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double s = m(i, j);
      for (size_t k = 0; k < j; ++k) s -= m(i, k) * m(j, k);
      m(i, j) = s / ljj;
    }
  }
  // Zero the strict upper triangle so the factor is clean L.
  for (size_t i = 0; i < n; ++i)
    for (size_t j = i + 1; j < n; ++j) m(i, j) = 0.0;
  return true;
}

Status CholeskySolve(Matrix a, std::vector<double> b,
                     std::vector<double>* x) {
  const size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    return Status::InvalidArgument("CholeskySolve: dimension mismatch");
  }
  // Retry with growing ridge if the matrix is near-singular; feature maps
  // like [1, x, x^2] over narrow key ranges are often ill-conditioned.
  double ridge = 0.0;
  Matrix factor = a;
  for (int attempt = 0; attempt < 8; ++attempt) {
    factor = a;
    if (ridge > 0.0) {
      for (size_t i = 0; i < n; ++i) factor(i, i) += ridge;
    }
    if (CholeskyFactor(&factor)) break;
    ridge = ridge == 0.0 ? 1e-9 : ridge * 100.0;
    if (attempt == 7) {
      return Status::Internal("CholeskySolve: matrix not positive definite");
    }
  }
  // Forward substitution: L z = b.
  std::vector<double> z(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= factor(i, k) * z[k];
    z[i] = s / factor(i, i);
  }
  // Backward substitution: L^T x = z.
  x->assign(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double s = z[ii];
    for (size_t k = ii + 1; k < n; ++k) s -= factor(k, ii) * (*x)[k];
    (*x)[ii] = s / factor(ii, ii);
  }
  return Status::OK();
}

Status LeastSquares(const Matrix& x, const std::vector<double>& y,
                    std::vector<double>* w, double ridge) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("LeastSquares: rows(X) != len(y)");
  }
  if (x.rows() < x.cols()) {
    return Status::InvalidArgument("LeastSquares: underdetermined system");
  }
  const size_t d = x.cols();
  Matrix gram = x.Gram();
  // Scale-aware ridge keeps conditioning stable across key magnitudes.
  double diag_max = 0.0;
  for (size_t i = 0; i < d; ++i) diag_max = std::max(diag_max, gram(i, i));
  const double lambda = ridge * std::max(diag_max, 1.0);
  for (size_t i = 0; i < d; ++i) gram(i, i) += lambda;

  std::vector<double> xty(d, 0.0);
  for (size_t r = 0; r < x.rows(); ++r) {
    const double yi = y[r];
    for (size_t c = 0; c < d; ++c) xty[c] += x(r, c) * yi;
  }
  return CholeskySolve(std::move(gram), std::move(xty), w);
}

}  // namespace li::linalg
