// Disk-paged learned index (Appendix D.2): when data lives in fixed-size
// pages scattered across storage, pos = F(key) * N no longer holds as a
// direct offset. The appendix sketches the fix implemented here: keep the
// RMI over logical positions plus "an additional translation table in the
// form of <first_key, disk-position>", and use "the predicted position
// with the min- and max-error to reduce the number of bytes which have to
// be read from a large page".
//
// SimulatedDisk stands in for the storage device (the paper's experiments
// are in-memory; we need page-read accounting, not real I/O): it counts
// page reads and charges a configurable per-read latency so benches can
// report both.

#ifndef LI_PAGING_PAGED_INDEX_H_
#define LI_PAGING_PAGED_INDEX_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/status.h"
#include "rmi/rmi.h"

namespace li::paging {

/// Fixed-size-page storage with read accounting. Pages are stored
/// out-of-order (a permutation) to model allocation on a real device.
class SimulatedDisk {
 public:
  SimulatedDisk() = default;

  /// Splits `keys` into pages of `keys_per_page`, shuffled by `seed` so
  /// logical order != physical order.
  Status Store(std::span<const uint64_t> keys, size_t keys_per_page,
               uint64_t seed = 13);

  /// Reads physical page `page_id`. Counts one page read.
  std::span<const uint64_t> ReadPage(uint32_t page_id) const;

  /// Reads only the slice [from, to) of the page — the Appendix-D.2
  /// "reduce the number of bytes" path. Counts a partial read.
  std::span<const uint64_t> ReadPageSlice(uint32_t page_id, size_t from,
                                          size_t to) const;

  size_t num_pages() const { return pages_.size(); }
  size_t keys_per_page() const { return keys_per_page_; }
  uint64_t page_reads() const { return page_reads_; }
  uint64_t bytes_read() const { return bytes_read_; }
  void ResetCounters() const {
    page_reads_ = 0;
    bytes_read_ = 0;
  }

  /// Logical->physical mapping, exposed for index construction only
  /// (a real system would get this from the allocator).
  uint32_t PhysicalPageOf(size_t logical_page) const {
    return logical_to_physical_[logical_page];
  }
  uint64_t FirstKeyOfLogicalPage(size_t logical_page) const {
    return first_keys_[logical_page];
  }
  size_t num_logical_pages() const { return logical_to_physical_.size(); }

 private:
  size_t keys_per_page_ = 0;
  std::vector<std::vector<uint64_t>> pages_;   // physical order
  std::vector<uint32_t> logical_to_physical_;  // permutation
  std::vector<uint64_t> first_keys_;           // per logical page
  mutable uint64_t page_reads_ = 0;
  mutable uint64_t bytes_read_ = 0;
};

/// Learned index over paged storage: RMI over logical key positions plus
/// the <first_key, disk-position> translation table.
class PagedLearnedIndex {
 public:
  PagedLearnedIndex() = default;

  /// `keys` must be the same sorted array given to `disk->Store`. The
  /// index keeps a reference to the disk but not to the keys.
  Status Build(std::span<const uint64_t> keys, const SimulatedDisk* disk,
               size_t num_leaf_models = 4096);

  /// Returns the value's logical position if the key exists. Performs
  /// model prediction -> translation -> bounded in-page (slice) search.
  std::optional<size_t> Find(uint64_t key) const;

  /// Pages touched by a range scan [lo_key, hi_key), returned as logical
  /// positions of matching keys.
  size_t CountRange(uint64_t lo_key, uint64_t hi_key) const;

  /// Index overhead: RMI + translation table.
  size_t SizeBytes() const {
    return rmi_.SizeBytes() +
           translation_.size() * (sizeof(uint64_t) + sizeof(uint32_t));
  }

 private:
  struct Translation {
    uint64_t first_key;
    uint32_t physical_page;
  };

  /// The keys copied at build time solely to drive the RMI's internal
  /// span; a production system would keep the fence keys only.
  std::vector<uint64_t> fence_copy_;
  const SimulatedDisk* disk_ = nullptr;
  rmi::Rmi<models::LinearModel> rmi_;
  std::vector<Translation> translation_;  // per logical page
};

}  // namespace li::paging

#endif  // LI_PAGING_PAGED_INDEX_H_
