#include "paging/paged_index.h"

#include <algorithm>

#include "common/random.h"
#include "search/search.h"

namespace li::paging {

Status SimulatedDisk::Store(std::span<const uint64_t> keys,
                            size_t keys_per_page, uint64_t seed) {
  if (keys_per_page == 0) {
    return Status::InvalidArgument("SimulatedDisk: keys_per_page == 0");
  }
  if (!std::is_sorted(keys.begin(), keys.end())) {
    return Status::InvalidArgument("SimulatedDisk: keys must be sorted");
  }
  keys_per_page_ = keys_per_page;
  const size_t num_pages = (keys.size() + keys_per_page - 1) / keys_per_page;
  pages_.assign(num_pages, {});
  logical_to_physical_.resize(num_pages);
  first_keys_.resize(num_pages);

  // Random physical placement.
  std::vector<uint32_t> perm(num_pages);
  for (size_t i = 0; i < num_pages; ++i) perm[i] = static_cast<uint32_t>(i);
  Xorshift128Plus rng(seed);
  for (size_t i = num_pages; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
  }
  for (size_t lp = 0; lp < num_pages; ++lp) {
    const size_t begin = lp * keys_per_page;
    const size_t end = std::min(begin + keys_per_page, keys.size());
    logical_to_physical_[lp] = perm[lp];
    first_keys_[lp] = keys[begin];
    pages_[perm[lp]].assign(keys.begin() + begin, keys.begin() + end);
  }
  page_reads_ = 0;
  bytes_read_ = 0;
  return Status::OK();
}

std::span<const uint64_t> SimulatedDisk::ReadPage(uint32_t page_id) const {
  ++page_reads_;
  const auto& page = pages_[page_id];
  bytes_read_ += page.size() * sizeof(uint64_t);
  return page;
}

std::span<const uint64_t> SimulatedDisk::ReadPageSlice(uint32_t page_id,
                                                       size_t from,
                                                       size_t to) const {
  ++page_reads_;
  const auto& page = pages_[page_id];
  from = std::min(from, page.size());
  to = std::clamp(to, from, page.size());
  bytes_read_ += (to - from) * sizeof(uint64_t);
  return std::span<const uint64_t>(page).subspan(from, to - from);
}

Status PagedLearnedIndex::Build(std::span<const uint64_t> keys,
                                const SimulatedDisk* disk,
                                size_t num_leaf_models) {
  if (disk == nullptr) {
    return Status::InvalidArgument("PagedLearnedIndex: null disk");
  }
  disk_ = disk;
  fence_copy_.assign(keys.begin(), keys.end());
  rmi::RmiConfig config;
  config.num_leaf_models = std::max<size_t>(16, num_leaf_models);
  LI_RETURN_IF_ERROR(rmi_.Build(fence_copy_, config));
  translation_.resize(disk->num_logical_pages());
  for (size_t lp = 0; lp < translation_.size(); ++lp) {
    translation_[lp] = {disk->FirstKeyOfLogicalPage(lp),
                        disk->PhysicalPageOf(lp)};
  }
  return Status::OK();
}

std::optional<size_t> PagedLearnedIndex::Find(uint64_t key) const {
  if (translation_.empty()) return std::nullopt;
  const size_t kpp = disk_->keys_per_page();
  const auto pred = rmi_.Predict(key);

  // Candidate logical pages from the error window, then pick the page
  // whose fence key covers `key` (at most a handful of fence compares).
  size_t lp0 = pred.lo / kpp;
  size_t lp1 = std::min((pred.hi == 0 ? 0 : pred.hi - 1) / kpp,
                        translation_.size() - 1);
  // Fence check: last page in [lp0, lp1] with first_key <= key; extend
  // left if even lp0's fence is above the key (window undershoot).
  while (lp0 > 0 && translation_[lp0].first_key > key) --lp0;
  while (lp1 + 1 < translation_.size() &&
         translation_[lp1 + 1].first_key <= key) {
    ++lp1;
  }
  size_t lp = lp0;
  for (size_t cand = lp0; cand <= lp1; ++cand) {
    if (translation_[cand].first_key <= key) {
      lp = cand;
    } else {
      break;
    }
  }

  // Bounded in-page read: intersect the error window with the page.
  const size_t page_base = lp * kpp;
  size_t from = pred.lo > page_base ? pred.lo - page_base : 0;
  size_t to = pred.hi > page_base ? pred.hi - page_base : 0;
  to = std::min(to, kpp);
  std::span<const uint64_t> slice =
      disk_->ReadPageSlice(translation_[lp].physical_page, from, to);
  size_t idx = search::BinarySearch(slice.data(), 0, slice.size(), key);
  if (idx < slice.size() && slice[idx] == key) {
    return page_base + from + idx;
  }
  // Window may have clipped the key (absent keys, or bound mismatch):
  // fall back to the full page.
  std::span<const uint64_t> page =
      disk_->ReadPage(translation_[lp].physical_page);
  idx = search::BinarySearch(page.data(), 0, page.size(), key);
  if (idx < page.size() && page[idx] == key) {
    return page_base + idx;
  }
  return std::nullopt;
}

size_t PagedLearnedIndex::CountRange(uint64_t lo_key, uint64_t hi_key) const {
  if (translation_.empty() || lo_key >= hi_key) return 0;
  const size_t kpp = disk_->keys_per_page();
  // Locate the starting page via the model window + fences.
  const auto pred = rmi_.Predict(lo_key);
  size_t lp = std::min(pred.lo / kpp, translation_.size() - 1);
  while (lp > 0 && translation_[lp].first_key > lo_key) --lp;
  while (lp + 1 < translation_.size() &&
         translation_[lp + 1].first_key <= lo_key) {
    ++lp;
  }
  size_t count = 0;
  for (; lp < translation_.size(); ++lp) {
    if (translation_[lp].first_key >= hi_key && count > 0) break;
    std::span<const uint64_t> page =
        disk_->ReadPage(translation_[lp].physical_page);
    for (const uint64_t k : page) {
      count += (k >= lo_key && k < hi_key);
    }
    if (!page.empty() && page.back() >= hi_key) break;
  }
  return count;
}

}  // namespace li::paging
