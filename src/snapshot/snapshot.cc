#include "snapshot/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

namespace li::snapshot {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

uint64_t AlignUp(uint64_t v, uint64_t a) { return (v + a - 1) & ~(a - 1); }

}  // namespace

// ---------------------------------------------------------------------------
// MappedFile

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::NotFound(Errno("open('" + path + "')"));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Status s = Status::Internal(Errno("fstat('" + path + "')"));
    ::close(fd);
    return s;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < sizeof(FileHeader)) {
    ::close(fd);
    return Status::InvalidArgument("snapshot '" + path +
                                   "' is smaller than a file header");
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) {
    return Status::Internal(Errno("mmap('" + path + "')"));
  }
  return std::shared_ptr<MappedFile>(
      new MappedFile(static_cast<const uint8_t*>(base), size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

void MappedFile::AdviseWillneed() const {
  if (data_ != nullptr) {
    (void)::madvise(const_cast<uint8_t*>(data_), size_, MADV_WILLNEED);
  }
}

void MappedFile::AdviseHugepage() const {
#ifdef MADV_HUGEPAGE
  if (data_ != nullptr) {
    (void)::madvise(const_cast<uint8_t*>(data_), size_, MADV_HUGEPAGE);
  }
#endif
}

// ---------------------------------------------------------------------------
// SnapshotWriter

Status SnapshotWriter::AddSection(std::string_view name, SectionKind kind,
                                  const void* data, size_t size) {
  if (name.empty() || name.size() > kMaxSectionName) {
    return Status::InvalidArgument("section name '" + std::string(name) +
                                   "' is empty or longer than " +
                                   std::to_string(kMaxSectionName) + " chars");
  }
  if (Has(name)) {
    return Status::InvalidArgument("duplicate section name '" +
                                   std::string(name) + "'");
  }
  if (size != 0 && data == nullptr) {
    return Status::InvalidArgument("null data for non-empty section '" +
                                   std::string(name) + "'");
  }
  const uint64_t off = arena_.Append(data, size, kArenaAlign);
  sections_.push_back(Staged{std::string(name), kind, off, size,
                             Crc32c(data, size)});
  return Status::OK();
}

bool SnapshotWriter::Has(std::string_view name) const {
  for (const Staged& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

Status SnapshotWriter::WriteFile(const std::string& path) const {
  // Layout: header | payloads (arena image shifted by 64) | table.
  // kArenaAlign == sizeof(FileHeader), so arena offsets stay 64-aligned
  // after the shift.
  static_assert(sizeof(FileHeader) == kArenaAlign);
  const uint64_t payload_base = sizeof(FileHeader);
  const uint64_t table_offset = AlignUp(payload_base + arena_.size(),
                                        kSectionAlign);
  const uint64_t table_bytes = sections_.size() * sizeof(SectionEntry);

  std::vector<SectionEntry> table(sections_.size());
  for (size_t i = 0; i < sections_.size(); ++i) {
    const Staged& s = sections_[i];
    SectionEntry& e = table[i];
    std::memcpy(e.name, s.name.data(), s.name.size());
    e.kind = static_cast<uint32_t>(s.kind);
    e.offset = payload_base + s.arena_off;
    e.size = s.size;
    e.crc = s.crc;
  }

  FileHeader header;
  header.section_count = static_cast<uint32_t>(sections_.size());
  header.file_size = table_offset + table_bytes;
  header.table_offset = table_offset;
  header.table_crc = Crc32c(table.data(), table_bytes);
  header.header_crc = 0;
  header.header_crc = Crc32c(&header, sizeof(header));

  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::Internal(Errno("fopen('" + tmp + "')"));
  bool ok = std::fwrite(&header, sizeof(header), 1, f) == 1;
  if (ok && arena_.size() != 0) {
    ok = std::fwrite(arena_.data(), 1, arena_.size(), f) == arena_.size();
  }
  // Pad payloads out to the aligned table offset.
  for (uint64_t at = payload_base + arena_.size(); ok && at < table_offset;
       ++at) {
    ok = std::fputc(0, f) != EOF;
  }
  if (ok && table_bytes != 0) {
    ok = std::fwrite(table.data(), 1, table_bytes, f) == table_bytes;
  }
  if (ok) ok = std::fflush(f) == 0;
  if (ok) ok = ::fsync(::fileno(f)) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    ::unlink(tmp.c_str());
    return Status::Internal(Errno("write('" + tmp + "')"));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::Internal(Errno("rename -> '" + path + "'"));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SnapshotReader

Result<SnapshotReader> SnapshotReader::Open(const std::string& path,
                                            const OpenOptions& opts) {
  auto mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  std::shared_ptr<MappedFile> file = mapped.take();

  SnapshotReader r;
  r.file_ = file;
  std::memcpy(&r.header_, file->data(), sizeof(FileHeader));
  const FileHeader& h = r.header_;

  if (h.magic != kMagic) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a snapshot (bad magic)");
  }
  if (h.version != kFormatVersion) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' has format version " +
        std::to_string(h.version) + "; this build reads version " +
        std::to_string(kFormatVersion));
  }
  FileHeader crc_check = h;
  crc_check.header_crc = 0;
  if (Crc32c(&crc_check, sizeof(crc_check)) != h.header_crc) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "' header checksum mismatch");
  }
  if (h.file_size != file->size()) {
    return Status::InvalidArgument(
        "snapshot '" + path + "' is truncated or padded: header says " +
        std::to_string(h.file_size) + " bytes, file has " +
        std::to_string(file->size()));
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(h.section_count) * sizeof(SectionEntry);
  if (h.table_offset % kSectionAlign != 0 ||
      h.table_offset > file->size() ||
      table_bytes > file->size() - h.table_offset) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "' section table is out of bounds");
  }
  const auto* entries = reinterpret_cast<const SectionEntry*>(
      file->data() + h.table_offset);
  if (Crc32c(entries, table_bytes) != h.table_crc) {
    return Status::InvalidArgument("snapshot '" + path +
                                   "' section table checksum mismatch");
  }
  r.table_ = std::span<const SectionEntry>(entries, h.section_count);
  for (const SectionEntry& e : r.table_) {
    if (e.name[kMaxSectionName] != '\0') {
      return Status::InvalidArgument("snapshot '" + path +
                                     "' has an unterminated section name");
    }
    if (e.offset % kSectionAlign != 0 || e.offset > file->size() ||
        e.size > file->size() - e.offset) {
      return Status::InvalidArgument("snapshot '" + path + "' section '" +
                                     e.name + "' is out of bounds");
    }
  }

  if (opts.madvise_hugepage) file->AdviseHugepage();
  if (opts.madvise_willneed) file->AdviseWillneed();
  if (opts.verify_payloads) {
    LI_RETURN_IF_ERROR(r.VerifyAllPayloads());
  }
  return r;
}

const SectionEntry* SnapshotReader::Find(std::string_view name) const {
  for (const SectionEntry& e : table_) {
    if (name == e.name) return &e;
  }
  return nullptr;
}

Result<std::span<const uint8_t>> SnapshotReader::Get(
    std::string_view name) const {
  const SectionEntry* e = Find(name);
  if (e == nullptr) {
    return Status::NotFound("snapshot has no section '" + std::string(name) +
                            "'");
  }
  return std::span<const uint8_t>(file_->data() + e->offset, e->size);
}

Status SnapshotReader::VerifyEntry(const SectionEntry& e) const {
  if (Crc32c(file_->data() + e.offset, e.size) != e.crc) {
    return Status::InvalidArgument(std::string("snapshot section '") +
                                   e.name + "' payload checksum mismatch");
  }
  return Status::OK();
}

Status SnapshotReader::VerifySection(std::string_view name) const {
  const SectionEntry* e = Find(name);
  if (e == nullptr) {
    return Status::NotFound("snapshot has no section '" + std::string(name) +
                            "'");
  }
  return VerifyEntry(*e);
}

Status SnapshotReader::VerifyAllPayloads() const {
  for (const SectionEntry& e : table_) {
    LI_RETURN_IF_ERROR(VerifyEntry(e));
  }
  return Status::OK();
}

}  // namespace li::snapshot
