// Snapshot writer / reader: the versioned, checksummed, mmap-able
// persistence layer behind every index's WriteSnapshot/OpenSnapshot pair
// (the index::Snapshottable contract).
//
// Write side: `SnapshotWriter` stages named sections into a relocatable
// Arena, then `WriteFile` lays out header + payloads + section table and
// publishes atomically (temp file + fsync + rename), so a crash never
// leaves a half-written snapshot under the target name.
//
// Read side: `SnapshotReader::Open` mmaps the file read-only and
// validates the envelope — magic, version, header CRC, section-table CRC
// and bounds — unconditionally. Per-section payload CRCs are verified
// lazily (opt-in at Open, or per-section via VerifySection): a full-file
// CRC pass touches every page and would erase most of the instant-restart
// win on multi-GB snapshots; see docs/PERSISTENCE.md ("restart-path
// tuning"). Indexes opened from a reader hold its keepalive(), so the
// mapping outlives every zero-copy view carved out of it.

#ifndef LI_SNAPSHOT_SNAPSHOT_H_
#define LI_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/status.h"
#include "snapshot/arena.h"
#include "snapshot/crc32c.h"
#include "snapshot/format.h"

namespace li::snapshot {

/// Read-only mmap of a snapshot file; the shared keepalive that pins
/// every zero-copy view into it. Unmapped when the last reference drops.
class MappedFile {
 public:
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path);
  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  /// madvise hints for the restart path: `Willneed` faults the whole
  /// mapping ahead of first use (fast first lookup, slower open);
  /// `Hugepage` requests transparent huge pages where supported. Both are
  /// best-effort; failures are ignored.
  void AdviseWillneed() const;
  void AdviseHugepage() const;

 private:
  MappedFile(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// Stages named sections and writes the versioned file. Section names are
/// composed by convention as "<prefix><component>", where nested indexes
/// pass extended prefixes down ("s3/" -> "s3/base/" -> "s3/base/leaves"),
/// which is what lets composite indexes (sharded, concurrent, LIF) reuse
/// their components' WriteSections unchanged.
class SnapshotWriter {
 public:
  /// Stages `size` bytes under `name`. Fails on duplicate or over-long
  /// names. Data is copied; the source need not outlive the call.
  Status AddSection(std::string_view name, SectionKind kind,
                    const void* data, size_t size);

  template <typename T>
  Status AddPod(std::string_view name, const T& pod,
                SectionKind kind = SectionKind::kMeta) {
    static_assert(std::is_trivially_copyable_v<T>);
    return AddSection(name, kind, &pod, sizeof(T));
  }

  template <typename T>
  Status AddArray(std::string_view name, std::span<const T> v,
                  SectionKind kind = SectionKind::kRaw) {
    static_assert(std::is_trivially_copyable_v<T>);
    return AddSection(name, kind, v.data(), v.size_bytes());
  }

  bool Has(std::string_view name) const;
  size_t section_count() const { return sections_.size(); }

  /// Writes "<path>.tmp", fsyncs, and renames over `path`.
  Status WriteFile(const std::string& path) const;

 private:
  struct Staged {
    std::string name;
    SectionKind kind;
    uint64_t arena_off;
    uint64_t size;
    uint32_t crc;
  };
  Arena arena_;
  std::vector<Staged> sections_;
};

struct OpenOptions {
  /// Verify every section payload's CRC at Open (one full read of the
  /// file). Off by default on the restart path; corruption surfaces
  /// instead through the always-on envelope checks and any explicit
  /// VerifySection/VerifyAllPayloads call.
  bool verify_payloads = false;
  /// Fault the mapping in ahead of first lookup (madvise MADV_WILLNEED).
  bool madvise_willneed = true;
  /// Request transparent huge pages for the mapping.
  bool madvise_hugepage = false;
};

/// Validated view over an open snapshot. Cheap to copy (shares the
/// mapping). All accessors are bounds-checked against the mapped size —
/// a truncated or bit-flipped file yields a Status, never UB.
class SnapshotReader {
 public:
  SnapshotReader() = default;

  static Result<SnapshotReader> Open(const std::string& path,
                                     const OpenOptions& opts = {});

  /// nullptr when absent.
  const SectionEntry* Find(std::string_view name) const;

  Result<std::span<const uint8_t>> Get(std::string_view name) const;

  template <typename T>
  Result<std::span<const T>> GetArray(std::string_view name) const {
    static_assert(std::is_trivially_copyable_v<T>);
    auto raw = Get(name);
    if (!raw.ok()) return raw.status();
    const std::span<const uint8_t> b = raw.value();
    if (b.size() % sizeof(T) != 0) {
      return Status::Internal("section '" + std::string(name) +
                              "' size is not a multiple of element size");
    }
    if (reinterpret_cast<uintptr_t>(b.data()) % alignof(T) != 0) {
      return Status::Internal("section '" + std::string(name) +
                              "' is misaligned for its element type");
    }
    return std::span<const T>(reinterpret_cast<const T*>(b.data()),
                              b.size() / sizeof(T));
  }

  template <typename T>
  Status GetPod(std::string_view name, T* out) const {
    static_assert(std::is_trivially_copyable_v<T>);
    auto raw = Get(name);
    if (!raw.ok()) return raw.status();
    if (raw.value().size() != sizeof(T)) {
      return Status::Internal("section '" + std::string(name) +
                              "' has unexpected size");
    }
    std::memcpy(out, raw.value().data(), sizeof(T));
    return Status::OK();
  }

  /// Recomputes one section's payload CRC against its table entry.
  Status VerifySection(std::string_view name) const;
  /// Verifies every payload (reads the whole file).
  Status VerifyAllPayloads() const;

  std::span<const SectionEntry> sections() const { return table_; }
  const FileHeader& header() const { return header_; }
  size_t mapped_bytes() const { return file_ ? file_->size() : 0; }
  /// Pin for zero-copy views carved out of this mapping.
  std::shared_ptr<const void> keepalive() const { return file_; }

 private:
  Status VerifyEntry(const SectionEntry& e) const;

  std::shared_ptr<MappedFile> file_;
  FileHeader header_{};
  std::span<const SectionEntry> table_;
};

}  // namespace li::snapshot

#endif  // LI_SNAPSHOT_SNAPSHOT_H_
