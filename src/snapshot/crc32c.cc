#include "snapshot/crc32c.h"

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace li::snapshot {
namespace {

// Slicing-by-8 tables, generated once at first use. Table 0 is the plain
// byte-at-a-time table; tables 1..7 fold 8 input bytes per iteration.
struct Crc32cTables {
  uint32_t t[8][256];
  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (int k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

uint32_t SoftwareCrc32c(const uint8_t* p, size_t n, uint32_t crc) {
  static const Crc32cTables tables;
  const auto& t = tables.t;
  // Byte-align is unnecessary for the software path; fold 8 at a time.
  while (n >= 8) {
    const uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                               static_cast<uint32_t>(p[1]) << 8 |
                               static_cast<uint32_t>(p[2]) << 16 |
                               static_cast<uint32_t>(p[3]) << 24);
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][p[4]] ^
          t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n--) crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  return crc;
}

#if defined(__SSE4_2__)
uint32_t HardwareCrc32c(const uint8_t* p, size_t n, uint32_t crc) {
  uint64_t c = crc;
  while (n >= 8) {
    uint64_t v;
    __builtin_memcpy(&v, p, 8);
    c = _mm_crc32_u64(c, v);
    p += 8;
    n -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  while (n--) c32 = _mm_crc32_u8(c32, *p++);
  return c32;
}
#endif

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  const uint32_t crc = ~seed;
#if defined(__SSE4_2__)
  return ~HardwareCrc32c(p, n, crc);
#else
  return ~SoftwareCrc32c(p, n, crc);
#endif
}

}  // namespace li::snapshot
