// CRC-32C (Castagnoli, polynomial 0x1EDC6F41 reflected to 0x82F63B78):
// the checksum used by the snapshot file format for its header, section
// table, and per-section payloads. CRC-32C was chosen over xxhash because
// SSE4.2 ships a dedicated instruction for it (the `crc32` op), so the
// hardware path keeps full-payload verification cheap enough to leave on
// in paranoid deployments, while the software slicing-by-8 fallback keeps
// portable (non -march=native) builds dependency-free.

#ifndef LI_SNAPSHOT_CRC32C_H_
#define LI_SNAPSHOT_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace li::snapshot {

/// CRC-32C of `n` bytes at `data`, chained from `seed` (pass a previous
/// result to checksum discontiguous regions as one stream; 0 starts a
/// fresh checksum). Hardware (SSE4.2) and software paths produce
/// identical values — snapshot files are portable across both.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

}  // namespace li::snapshot

#endif  // LI_SNAPSHOT_CRC32C_H_
