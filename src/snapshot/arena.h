// Relocatable arena + flat owned-or-mapped array storage.
//
// `Arena` is the staging buffer behind `SnapshotWriter`: one contiguous
// 64-byte-aligned allocation addressed by *offsets*, never pointers, so
// the whole region can be grown (realloc-style) or written to disk and
// later mmapped at an arbitrary base address without fixups. 64-byte
// alignment matches the SIMD kernels' cache-line-aligned load
// expectations (docs/SIMD.md) and is preserved in the on-disk layout:
// every section payload starts on a 64-byte file offset, and mmap bases
// are page-aligned, so mapped arrays are at least as aligned as their
// staged counterparts.
//
// `FlatVec<T>` is the owned-or-mapped flat array the hot index structures
// store their state in (RMI leaf tables, bloom bitmaps, hash slot
// arrays). It replaces std::vector in those structures so an index can be
// EITHER freshly built (owning one aligned heap block, mutable) OR opened
// zero-copy from a snapshot (a read-only view into an mmapped file, plus
// a shared keepalive that pins the mapping) — with identical read-path
// code and layout in both modes. T must be trivially copyable: flat
// layouts are the point.

#ifndef LI_SNAPSHOT_ARENA_H_
#define LI_SNAPSHOT_ARENA_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace li::snapshot {

/// Cache-line / SIMD-lane alignment used throughout the snapshot layer:
/// arena allocations, section file offsets, and FlatVec owned buffers.
inline constexpr size_t kArenaAlign = 64;

namespace internal {
struct AlignedDelete {
  void operator()(uint8_t* p) const {
    ::operator delete[](p, std::align_val_t{kArenaAlign});
  }
};
using AlignedBuf = std::unique_ptr<uint8_t[], AlignedDelete>;

inline AlignedBuf AlignedAlloc(size_t n) {
  return AlignedBuf(static_cast<uint8_t*>(
      ::operator new[](n, std::align_val_t{kArenaAlign})));
}
}  // namespace internal

/// Growable bump allocator addressed by offsets. Offsets handed out by
/// AllocBytes/Append remain valid across growth (the backing block moves;
/// the offsets do not) — resolve them lazily via at()/data() and never
/// cache raw pointers across allocations.
class Arena {
 public:
  Arena() = default;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Reserves `n` zero-initialized bytes at the next `align`-aligned
  /// offset and returns that offset. `align` must be a power of two and
  /// at most kArenaAlign (the block base guarantees no more).
  uint64_t AllocBytes(size_t n, size_t align = kArenaAlign) {
    assert(align != 0 && (align & (align - 1)) == 0 && align <= kArenaAlign);
    const size_t off = (size_ + (align - 1)) & ~(align - 1);
    Reserve(off + n);
    if (off > size_) std::memset(buf_.get() + size_, 0, off - size_);
    std::memset(buf_.get() + off, 0, n);
    size_ = off + n;
    return off;
  }

  /// Copies `n` bytes from `src` into the arena at the next aligned
  /// offset; returns the offset.
  uint64_t Append(const void* src, size_t n, size_t align = kArenaAlign) {
    const uint64_t off = AllocBytes(n, align);
    if (n != 0) std::memcpy(buf_.get() + off, src, n);
    return off;
  }

  template <typename T>
  uint64_t AppendArray(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "arena arrays must be trivially copyable");
    return Append(v.data(), v.size_bytes(), kArenaAlign);
  }

  uint8_t* at(uint64_t off) { return buf_.get() + off; }
  const uint8_t* at(uint64_t off) const { return buf_.get() + off; }
  const uint8_t* data() const { return buf_.get(); }
  size_t size() const { return size_; }

 private:
  void Reserve(size_t need) {
    if (need <= cap_) return;
    size_t cap = cap_ == 0 ? 4096 : cap_;
    while (cap < need) cap *= 2;
    internal::AlignedBuf grown = internal::AlignedAlloc(cap);
    if (size_ != 0) std::memcpy(grown.get(), buf_.get(), size_);
    buf_ = std::move(grown);
    cap_ = cap;
  }

  internal::AlignedBuf buf_;
  size_t size_ = 0;
  size_t cap_ = 0;
};

/// Flat array of trivially-copyable T in one of three storage modes:
///  * owned   — one kArenaAlign-aligned heap block, mutable (built state);
///  * adopted — takes over a std::vector's buffer without copying
///              (bulk-build paths that naturally produce a vector);
///  * view    — non-owning read-only window (an mmapped snapshot
///              section), pinned by a shared keepalive.
/// Reads are identical in all modes; mutation asserts !mapped(). Copying
/// deep-copies owned/adopted storage but shares a view (a view is already
/// immutable); moves always transfer.
template <typename T>
class FlatVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "FlatVec requires trivially copyable elements");

 public:
  using value_type = T;

  FlatVec() = default;
  FlatVec(FlatVec&& o) noexcept { MoveFrom(std::move(o)); }
  FlatVec& operator=(FlatVec&& o) noexcept {
    if (this != &o) MoveFrom(std::move(o));
    return *this;
  }
  FlatVec(const FlatVec& o) { CopyFrom(o); }
  FlatVec& operator=(const FlatVec& o) {
    if (this != &o) CopyFrom(o);
    return *this;
  }

  /// Wraps an immutable span whose lifetime is guaranteed by `keepalive`
  /// (typically the snapshot mapping).
  static FlatVec View(std::span<const T> s,
                      std::shared_ptr<const void> keepalive) {
    FlatVec v;
    v.ptr_ = const_cast<T*>(s.data());
    v.size_ = s.size();
    v.mapped_ = true;
    v.keepalive_ = std::move(keepalive);
    return v;
  }

  /// Takes over `src`'s buffer with no copy; the vector is stored in the
  /// keepalive. The result is still read-only-after-adopt on the mutation
  /// API (mapped() == false, but prefer rebuilding over mutating adopted
  /// storage — alignment is whatever the vector provided).
  static FlatVec Adopt(std::vector<T>&& src) {
    auto holder = std::make_shared<std::vector<T>>(std::move(src));
    FlatVec v;
    v.ptr_ = holder->data();
    v.size_ = holder->size();
    v.mapped_ = false;
    v.adopted_ = true;
    v.keepalive_ = std::move(holder);
    return v;
  }

  void assign(size_t n, const T& fill) {
    ReallocOwned(n);
    for (size_t i = 0; i < n; ++i) ptr_[i] = fill;
  }

  void clear() {
    buf_.reset();
    keepalive_.reset();
    ptr_ = nullptr;
    size_ = 0;
    mapped_ = false;
    adopted_ = false;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// True when this is a zero-copy view into a snapshot mapping.
  bool mapped() const { return mapped_; }

  const T* data() const { return ptr_; }
  const T* begin() const { return ptr_; }
  const T* end() const { return ptr_ + size_; }
  const T& operator[](size_t i) const { return ptr_[i]; }

  T* mutable_data() {
    assert(!mapped_ && "cannot mutate a mapped snapshot view");
    return ptr_;
  }
  T& operator[](size_t i) {
    assert(!mapped_ && "cannot mutate a mapped snapshot view");
    return ptr_[i];
  }

  std::span<const T> span() const { return {ptr_, size_}; }

 private:
  void ReallocOwned(size_t n) {
    buf_ = n == 0 ? nullptr : internal::AlignedAlloc(n * sizeof(T));
    keepalive_.reset();
    ptr_ = reinterpret_cast<T*>(buf_.get());
    size_ = n;
    mapped_ = false;
    adopted_ = false;
  }

  void MoveFrom(FlatVec&& o) {
    buf_ = std::move(o.buf_);
    keepalive_ = std::move(o.keepalive_);
    ptr_ = std::exchange(o.ptr_, nullptr);
    size_ = std::exchange(o.size_, 0);
    mapped_ = std::exchange(o.mapped_, false);
    adopted_ = std::exchange(o.adopted_, false);
  }

  void CopyFrom(const FlatVec& o) {
    if (o.mapped_) {
      // Views are immutable; share the window and its keepalive.
      buf_.reset();
      keepalive_ = o.keepalive_;
      ptr_ = o.ptr_;
      size_ = o.size_;
      mapped_ = true;
      adopted_ = false;
      return;
    }
    ReallocOwned(o.size_);
    if (o.size_ != 0) std::memcpy(ptr_, o.ptr_, o.size_ * sizeof(T));
  }

  internal::AlignedBuf buf_;                 // owned mode
  std::shared_ptr<const void> keepalive_;    // view / adopted modes
  T* ptr_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  bool adopted_ = false;
};

}  // namespace li::snapshot

#endif  // LI_SNAPSHOT_ARENA_H_
