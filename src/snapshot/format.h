// On-disk snapshot format (version 1): fixed-size structs, little-endian,
// CRC-32C checksums, every payload 64-byte aligned from the file start.
//
//   offset 0    FileHeader (64 B, crc-protected)
//   offset 64   section payloads, each starting on a 64 B boundary
//   table_offset  SectionEntry[section_count] (64 B each, crc-protected)
//
// The section table is self-describing: each entry names its section
// (prefix-composed, e.g. "s3/base/leaves"), records a kind tag, the
// payload's absolute file offset, byte size, and CRC-32C. Readers locate
// state by name, never by position, so writers may add sections freely
// within a format version. See docs/PERSISTENCE.md for the full layout
// diagram and versioning rules.

#ifndef LI_SNAPSHOT_FORMAT_H_
#define LI_SNAPSHOT_FORMAT_H_

#include <cstdint>
#include <type_traits>

namespace li::snapshot {

/// "LISNAP01" read as a little-endian u64. Bump the trailing digits (and
/// kFormatVersion) together on incompatible layout changes.
inline constexpr uint64_t kMagic = 0x3130'5041'4E53'494Cull;
inline constexpr uint32_t kFormatVersion = 1;
/// Alignment of every section payload's file offset.
inline constexpr uint64_t kSectionAlign = 64;
/// Longest section name, including prefixes, excluding the NUL.
inline constexpr size_t kMaxSectionName = 35;

struct FileHeader {
  uint64_t magic = kMagic;
  uint32_t version = kFormatVersion;
  uint32_t section_count = 0;
  uint64_t file_size = 0;     // total bytes; validated against the fd
  uint64_t table_offset = 0;  // absolute offset of SectionEntry[count]
  uint32_t table_crc = 0;     // CRC-32C of the section table bytes
  uint32_t header_crc = 0;    // CRC-32C of this struct with this field 0
  uint8_t reserved[24] = {};
};
static_assert(sizeof(FileHeader) == 64, "header is one cache line");
static_assert(std::is_trivially_copyable_v<FileHeader>);

/// Coarse payload classification for tooling (snapshot_inspect); readers
/// key on names, kinds are informational.
enum class SectionKind : uint32_t {
  kRaw = 0,       // uninterpreted bytes (strings, nested blobs)
  kMeta = 1,      // one POD metadata struct
  kKeys = 2,      // sorted key array
  kLeaves = 3,    // RMI leaf-model table
  kBitmap = 4,    // bloom bit words
  kSlots = 5,     // hash-map slot/overflow arrays
  kDelta = 6,     // packed delta-buffer entries
  kManifest = 7,  // composite-index manifest (shards, versions)
  kSegments = 8,  // range-filter segment table (per-segment CDF models)
  kRangeFilterMeta = 9,  // range-filter geometry meta (rangefilter/filter_meta.h)
};

inline const char* SectionKindName(SectionKind k) {
  switch (k) {
    case SectionKind::kRaw: return "raw";
    case SectionKind::kMeta: return "meta";
    case SectionKind::kKeys: return "keys";
    case SectionKind::kLeaves: return "leaves";
    case SectionKind::kBitmap: return "bitmap";
    case SectionKind::kSlots: return "slots";
    case SectionKind::kDelta: return "delta";
    case SectionKind::kManifest: return "manifest";
    case SectionKind::kSegments: return "segments";
    case SectionKind::kRangeFilterMeta: return "rf-meta";
  }
  return "unknown";
}

struct SectionEntry {
  char name[kMaxSectionName + 1] = {};  // NUL-terminated
  uint32_t kind = 0;                    // SectionKind
  uint64_t offset = 0;                  // absolute, kSectionAlign-aligned
  uint64_t size = 0;                    // payload bytes (before padding)
  uint32_t crc = 0;                     // CRC-32C of the payload
  uint32_t reserved = 0;
};
static_assert(sizeof(SectionEntry) == 64, "entry is one cache line");
static_assert(std::is_trivially_copyable_v<SectionEntry>);

}  // namespace li::snapshot

#endif  // LI_SNAPSHOT_FORMAT_H_
