#include "data/strings.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/random.h"

namespace li::data {

namespace {

// Skewed categorical draw: probability ~ 1/(rank+1) over `n` options.
size_t ZipfPick(Xorshift128Plus& rng, size_t n) {
  // Inverse-CDF on harmonic weights, approximated via exp draw; cheap and
  // adequately skewed for fan-out modelling.
  const double u = rng.NextDouble();
  const double h = std::log(static_cast<double>(n) + 1.0);
  const size_t k = static_cast<size_t>(std::exp(u * h)) - 1;
  return std::min(k, n - 1);
}

const char* kTopLevels[] = {"ads",  "blog", "docs", "img",  "mail",
                            "news", "shop", "site", "user", "wiki"};
const char* kCategories[] = {"archive", "assets", "content", "data",
                             "media",   "pages",  "public",  "static"};

std::string RandomToken(Xorshift128Plus& rng, size_t min_len, size_t max_len) {
  static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  const size_t len = min_len + rng.NextBounded(max_len - min_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(kAlpha[rng.NextBounded(sizeof(kAlpha) - 1)]);
  }
  return s;
}

}  // namespace

std::vector<std::string> GenDocIds(size_t n, uint64_t seed) {
  Xorshift128Plus rng(seed);
  std::vector<std::string> ids;
  ids.reserve(n + n / 8);
  char buf[32];
  while (ids.size() < n + n / 8) {
    const char* top = kTopLevels[ZipfPick(rng, std::size(kTopLevels))];
    const char* cat = kCategories[ZipfPick(rng, std::size(kCategories))];
    // Skewed numeric shard + dense doc number => long shared prefixes.
    const unsigned shard = static_cast<unsigned>(ZipfPick(rng, 64));
    const uint64_t doc = rng.NextBounded(10'000'000);
    snprintf(buf, sizeof(buf), "%02u/%09llu", shard,
             static_cast<unsigned long long>(doc));
    std::string id;
    id.reserve(40);
    id += top;
    id += '/';
    id += cat;
    id += '/';
    id += buf;
    ids.push_back(std::move(id));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (ids.size() > n) ids.resize(n);
  return ids;
}

namespace {

const char* kBenignDomains[] = {
    "google",  "youtube", "facebook", "amazon",  "wikipedia", "reddit",
    "twitter", "github",  "nytimes",  "cnn",     "bbc",       "stack",
    "linkedin", "apple",  "netflix",  "spotify", "dropbox",   "adobe"};
const char* kBenignTlds[] = {".com", ".org", ".net", ".edu", ".io", ".gov"};
const char* kBenignPaths[] = {"index",   "home",  "about",   "news",
                              "article", "watch", "profile", "search"};

const char* kPhishTargets[] = {"paypal",  "apple",   "amazon", "bank",
                               "netflix", "account", "chase",  "office",
                               "micros0ft", "g00gle", "faceb00k", "secure"};
const char* kPhishTokens[] = {"login",  "verify", "secure",  "update",
                              "signin", "confirm", "webscr", "support",
                              "alert",  "billing", "recover", "wallet"};
const char* kPhishTlds[] = {".xyz", ".top", ".tk",   ".ru",
                            ".cn",  ".info", ".club", ".live"};

std::string BenignUrl(Xorshift128Plus& rng) {
  std::string url = "www.";
  url += kBenignDomains[ZipfPick(rng, std::size(kBenignDomains))];
  if (rng.NextDouble() < 0.3) url += RandomToken(rng, 2, 5);
  url += kBenignTlds[ZipfPick(rng, std::size(kBenignTlds))];
  url += '/';
  url += kBenignPaths[ZipfPick(rng, std::size(kBenignPaths))];
  if (rng.NextDouble() < 0.5) {
    url += '/';
    url += RandomToken(rng, 4, 10);
  }
  return url;
}

std::string PhishUrl(Xorshift128Plus& rng) {
  std::string url;
  const double style = rng.NextDouble();
  if (style < 0.18) {
    // Compromised legitimate site: lexically benign host, phishing path
    // buried deep. These are the classifier's irreducible false negatives
    // (the paper's 1.7M-key set had FNR 55% at tau for 0.5% FPR — real
    // blacklists are not linearly separable).
    url = "www.";
    url += kBenignDomains[ZipfPick(rng, std::size(kBenignDomains))];
    if (rng.NextDouble() < 0.5) url += RandomToken(rng, 2, 5);
    url += kBenignTlds[ZipfPick(rng, std::size(kBenignTlds))];
    url += '/';
    url += kBenignPaths[ZipfPick(rng, std::size(kBenignPaths))];
    url += '/';
    url += RandomToken(rng, 4, 10);
    return url;
  }
  if (style < 0.33) {
    // Raw IPv4 host.
    char buf[24];
    snprintf(buf, sizeof(buf), "%u.%u.%u.%u",
             unsigned(rng.NextBounded(223) + 1), unsigned(rng.NextBounded(256)),
             unsigned(rng.NextBounded(256)), unsigned(rng.NextBounded(256)));
    url = buf;
    url += '/';
    url += kPhishTokens[rng.NextBounded(std::size(kPhishTokens))];
    url += '-';
    url += kPhishTargets[rng.NextBounded(std::size(kPhishTargets))];
  } else {
    // Hyphenated typosquat host: target-token-token.badtld
    url = kPhishTargets[rng.NextBounded(std::size(kPhishTargets))];
    const int extra = 1 + static_cast<int>(rng.NextBounded(3));
    for (int i = 0; i < extra; ++i) {
      url += '-';
      url += kPhishTokens[rng.NextBounded(std::size(kPhishTokens))];
    }
    if (rng.NextDouble() < 0.4) {
      url += '-';
      url += RandomToken(rng, 3, 8);
    }
    url += kPhishTlds[rng.NextBounded(std::size(kPhishTlds))];
    url += '/';
    url += kPhishTokens[rng.NextBounded(std::size(kPhishTokens))];
    if (rng.NextDouble() < 0.5) {
      url += '.';
      url += RandomToken(rng, 2, 4);
    }
  }
  return url;
}

// Benign-owned but phishing-looking: legitimate security/login pages.
std::string WhitelistedUrl(Xorshift128Plus& rng) {
  std::string url = "www.";
  url += kBenignDomains[ZipfPick(rng, std::size(kBenignDomains))];
  url += kBenignTlds[ZipfPick(rng, std::size(kBenignTlds))];
  url += '/';
  url += kPhishTokens[rng.NextBounded(std::size(kPhishTokens))];
  if (rng.NextDouble() < 0.6) {
    url += '/';
    url += kPhishTokens[rng.NextBounded(std::size(kPhishTokens))];
  }
  return url;
}

}  // namespace

UrlCorpus GenUrls(size_t num_keys, size_t num_negatives, uint64_t seed) {
  Xorshift128Plus rng(seed);
  UrlCorpus corpus;
  corpus.keys.reserve(num_keys);
  for (size_t i = 0; i < num_keys; ++i) corpus.keys.push_back(PhishUrl(rng));
  std::sort(corpus.keys.begin(), corpus.keys.end());
  corpus.keys.erase(std::unique(corpus.keys.begin(), corpus.keys.end()),
                    corpus.keys.end());

  // Negative mix mirrors §5.2: random valid URLs + whitelisted URLs that
  // "could be mistaken for phishing pages".
  corpus.random_negatives.reserve(num_negatives);
  corpus.whitelisted.reserve(num_negatives / 2);
  for (size_t i = 0; i < num_negatives; ++i) {
    corpus.random_negatives.push_back(BenignUrl(rng));
  }
  for (size_t i = 0; i < num_negatives / 2; ++i) {
    corpus.whitelisted.push_back(WhitelistedUrl(rng));
  }
  return corpus;
}

}  // namespace li::data
