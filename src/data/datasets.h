// Synthetic dataset generators reproducing the distributional shape of the
// paper's evaluation data (§3.7.1):
//
//  * Weblog  — timestamps of requests to a university web server: complex
//              superimposed daily/weekly/semester periodicity plus bursts;
//              "almost a worst-case scenario for the learned index".
//  * Maps    — longitudes of world map features: "relatively linear",
//              clustered around populated longitude bands.
//  * Lognormal — 190M values from Lognormal(0, 2) scaled to integers up to
//              1B; heavy-tailed and highly non-linear.
//
// All generators return a strictly increasing (deduplicated) sorted vector
// of 64-bit keys and are deterministic in the seed.

#ifndef LI_DATA_DATASETS_H_
#define LI_DATA_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace li::data {

using Key = uint64_t;

/// Which synthetic dataset to generate; used by benches to loop over the
/// three Figure-4 datasets.
enum class DatasetKind { kMaps, kWeblog, kLognormal };

const char* DatasetName(DatasetKind kind);

/// Lognormal(mu, sigma) scaled so the bulk of the mass lands in [0, scale].
/// Matches the paper: mu = 0, sigma = 2, values scaled up to ~1B.
std::vector<Key> GenLognormal(size_t n, uint64_t seed = 42, double mu = 0.0,
                              double sigma = 2.0, double scale = 1e9);

/// Longitude-like mixture: dense clusters at populated longitudes over a
/// uniform background, fixed-point-mapped from [-180, 180] to uint64.
std::vector<Key> GenMaps(size_t n, uint64_t seed = 42);

/// Non-homogeneous Poisson arrival timestamps (microseconds) with diurnal,
/// weekly and semester seasonality plus random bursts.
std::vector<Key> GenWeblog(size_t n, uint64_t seed = 42);

/// Uniform keys in [0, max).
std::vector<Key> GenUniform(size_t n, uint64_t seed = 42,
                            Key max = uint64_t{1} << 62);

/// Dense sequential keys [base, base + n) — the paper's O(1) motivating
/// example (keys 1..100M).
std::vector<Key> GenSequential(size_t n, Key base = 0);

/// Dispatch by kind.
std::vector<Key> Generate(DatasetKind kind, size_t n, uint64_t seed = 42);

/// Turns a sorted multiset into a strictly increasing key set by bumping
/// duplicates; exposed for reuse by custom generators and tests.
void MakeStrictlyIncreasing(std::vector<Key>* keys);

/// Draws `count` existing keys uniformly from `keys` (lookup workload).
std::vector<Key> SampleKeys(const std::vector<Key>& keys, size_t count,
                            uint64_t seed = 7);

/// Draws `count` keys uniformly from the key *range* (mostly non-existing;
/// used to exercise lower-bound semantics for absent keys).
std::vector<Key> SampleRange(const std::vector<Key>& keys, size_t count,
                             uint64_t seed = 7);

}  // namespace li::data

#endif  // LI_DATA_DATASETS_H_
