#include "data/datasets.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/random.h"

namespace li::data {

const char* DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kMaps: return "Map Data";
    case DatasetKind::kWeblog: return "Web Data";
    case DatasetKind::kLognormal: return "Log-Normal Data";
  }
  return "?";
}

void MakeStrictlyIncreasing(std::vector<Key>* keys) {
  std::sort(keys->begin(), keys->end());
  for (size_t i = 1; i < keys->size(); ++i) {
    if ((*keys)[i] <= (*keys)[i - 1]) (*keys)[i] = (*keys)[i - 1] + 1;
  }
}

namespace {

/// Acklam's rational approximation of the inverse standard-normal CDF
/// (|relative error| < 1.15e-9 over (0, 1)).
double InverseNormalCdf(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425, phigh = 1.0 - plow;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > phigh) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

/// Stratified quantile sequence: u_i = (i + jitter_i) / n with
/// jitter_i ~ U(0.5 - amp/2, 0.5 + amp/2). amp = 1 reproduces a fully
/// random stratified sample; smaller amp yields locally regular data —
/// the structure real datasets exhibit (quantized OSM coordinates, bulk
/// imports, log-timestamp granularity) that i.i.d. sampling lacks and
/// which the paper's hash experiments implicitly rely on.
double StratifiedU(size_t i, size_t n, double amp, Xorshift128Plus& rng) {
  const double jitter = 0.5 + amp * (rng.NextDouble() - 0.5);
  return (static_cast<double>(i) + jitter) / static_cast<double>(n);
}

}  // namespace

std::vector<Key> GenLognormal(size_t n, uint64_t seed, double mu, double sigma,
                              double scale) {
  Xorshift128Plus rng(seed);
  std::vector<Key> keys;
  keys.reserve(n);
  // Stratified inverse-CDF sampling of Lognormal(mu, sigma), scaled so the
  // bulk lands "up to 1B" as in the paper. The heavy tail survives exactly
  // (quantiles are exact); clamp guards the extreme top quantile.
  // Mostly i.i.d. draws (the paper's Lognormal is a pure synthetic sample,
  // the least locally-regular of the three datasets) with a stratified
  // minority so quantile coverage stays deterministic across seeds.
  const double cap = scale * 1e6;
  for (size_t i = 0; i < n; ++i) {
    const bool iid = rng.NextDouble() < 0.4;
    const double u = iid ? std::min(std::max(rng.NextDouble(), 1e-12),
                                    1.0 - 1e-12)
                         : StratifiedU(i, n, /*amp=*/1.0, rng);
    const double v = std::exp(mu + sigma * InverseNormalCdf(u));
    keys.push_back(static_cast<Key>(std::min(v * scale / std::exp(2.0), cap)));
  }
  MakeStrictlyIncreasing(&keys);
  return keys;
}

std::vector<Key> GenMaps(size_t n, uint64_t seed) {
  Xorshift128Plus rng(seed);
  // Populated longitude bands (roughly: Americas, Europe/Africa, South Asia,
  // East Asia) with differing spreads, plus a uniform ocean background.
  struct Cluster {
    double center, spread, weight;
  };
  // Real OSM longitude mass is broad — continents span wide bands and
  // mapped roads exist almost everywhere — so the CDF is "relatively
  // linear [with] fewer irregularities" (§3.7.1). Wide clusters + a solid
  // uniform background reproduce that near-linearity.
  static const Cluster kClusters[] = {
      {-122.0, 14.0, 0.10}, {-95.0, 18.0, 0.13}, {-74.0, 12.0, 0.09},
      {-46.0, 16.0, 0.06},  {2.0, 18.0, 0.16},   {28.0, 22.0, 0.09},
      {77.0, 16.0, 0.12},   {105.0, 16.0, 0.07}, {120.0, 14.0, 0.08},
      {139.0, 10.0, 0.06},
  };
  double total_w = 0.0;
  for (const auto& c : kClusters) total_w += c.weight;
  const double background = 0.12;  // uniform over [-180, 180]
  const double norm = total_w + background;

  // Mixture CDF over longitude.
  auto mixture_cdf = [&](double x) {
    double acc = background * (x + 180.0) / 360.0;
    for (const auto& c : kClusters) {
      acc += c.weight * 0.5 *
             (1.0 + std::erf((x - c.center) / (c.spread * M_SQRT2)));
    }
    return acc / norm;
  };

  // Tabulate the CDF once, then invert it with a forward-walking cursor —
  // the stratified quantiles u_i are increasing, so inversion is O(n+grid).
  constexpr size_t kGrid = 1 << 22;
  std::vector<double> cdf(kGrid + 1);
  for (size_t g = 0; g <= kGrid; ++g) {
    cdf[g] = mixture_cdf(-180.0 + 360.0 * static_cast<double>(g) / kGrid);
  }
  // Gaussian tails extend past +-180, so renormalize to an exact [0, 1]
  // range over the grid; otherwise quantiles near 1 fall off the table.
  const double c_lo = cdf.front();
  const double c_span = cdf.back() - c_lo;
  for (double& c : cdf) c = (c - c_lo) / c_span;
  cdf.back() = 1.0;

  // OSM-like regularity: feature coordinates are quantized and bulk-
  // imported, so locally the key set is more even than i.i.d.; fully
  // stratified quantiles (amp = 1) model that (see StratifiedU).
  std::vector<Key> keys;
  keys.reserve(n);
  size_t cursor = 0;
  for (size_t i = 0; i < n; ++i) {
    const double u = StratifiedU(i, n, /*amp=*/1.0, rng);
    while (cursor + 1 < kGrid && cdf[cursor + 1] < u) ++cursor;
    const double c0 = cdf[cursor], c1 = cdf[cursor + 1];
    const double frac = (c1 > c0) ? (u - c0) / (c1 - c0) : 0.5;
    const double lon =
        -180.0 + 360.0 * (static_cast<double>(cursor) + frac) / kGrid;
    // Fixed-point map [-180, 180] -> [0, 3.6e17]: ~1e-9 degree resolution,
    // comfortably more precise than OSM coordinates.
    keys.push_back(static_cast<Key>((lon + 180.0) * 1e15));
  }
  MakeStrictlyIncreasing(&keys);
  return keys;
}

namespace {

/// Relative request rate at time t (seconds since an epoch that starts on a
/// Monday 00:00). Composes diurnal shape, lunch dip, weekday/weekend factor
/// and semester breaks — the "class schedules, weekends, holidays,
/// lunch-breaks, semester breaks" patterns the paper calls out.
double WeblogRate(double t) {
  const double day = 86400.0;
  const double hour = std::fmod(t, day) / 3600.0;
  const int day_of_week = static_cast<int>(std::fmod(t / day, 7.0));
  const int day_of_year = static_cast<int>(std::fmod(t / day, 365.0));

  // Diurnal: quiet at night, peak mid-morning and mid-afternoon.
  double diurnal = 0.08 + std::exp(-0.5 * std::pow((hour - 10.5) / 2.2, 2)) +
                   0.9 * std::exp(-0.5 * std::pow((hour - 15.0) / 2.5, 2));
  // Lunch dip.
  diurnal *= 1.0 - 0.35 * std::exp(-0.5 * std::pow((hour - 12.5) / 0.7, 2));
  // Weekends drop sharply.
  const double weekday = (day_of_week >= 5) ? 0.25 : 1.0;
  // Two semester breaks (winter ~ days 350..20, summer ~ days 160..240).
  double semester = 1.0;
  if (day_of_year >= 160 && day_of_year <= 240) semester = 0.3;
  if (day_of_year >= 350 || day_of_year <= 20) semester = 0.2;
  return diurnal * weekday * semester;
}

}  // namespace

std::vector<Key> GenWeblog(size_t n, uint64_t seed) {
  Xorshift128Plus rng(seed);
  std::vector<Key> keys;
  keys.reserve(n);
  // Target ~3 years of traffic; pick a base rate so n arrivals span it.
  const double span = 3.0 * 365.0 * 86400.0;
  const double base_rate = static_cast<double>(n) / (span * 0.45);
  double t = 0.0;
  double burst_until = -1.0;
  double burst_factor = 1.0;
  while (keys.size() < n) {
    double rate = base_rate * WeblogRate(t);
    if (t < burst_until) {
      rate *= burst_factor;
    } else if (rng.NextDouble() < 5e-6) {
      // Department-event burst: 3-8x traffic for minutes to an hour.
      burst_factor = 3.0 + 5.0 * rng.NextDouble();
      burst_until = t + 300.0 + 3300.0 * rng.NextDouble();
    }
    rate = std::max(rate, base_rate * 1e-3);
    // Sub-Poisson arrivals: servers serialize logging, so observed gaps are
    // somewhat more regular than exponential (mean gap stays 1/rate).
    t += (0.35 + 0.65 * rng.NextExponential(1.0)) / rate;
    keys.push_back(static_cast<Key>(t * 1e6));  // microsecond timestamps
  }
  MakeStrictlyIncreasing(&keys);
  return keys;
}

std::vector<Key> GenUniform(size_t n, uint64_t seed, Key max) {
  Xorshift128Plus rng(seed);
  std::vector<Key> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) keys.push_back(rng.NextBounded(max));
  MakeStrictlyIncreasing(&keys);
  return keys;
}

std::vector<Key> GenSequential(size_t n, Key base) {
  std::vector<Key> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = base + i;
  return keys;
}

std::vector<Key> Generate(DatasetKind kind, size_t n, uint64_t seed) {
  switch (kind) {
    case DatasetKind::kMaps: return GenMaps(n, seed);
    case DatasetKind::kWeblog: return GenWeblog(n, seed);
    case DatasetKind::kLognormal: return GenLognormal(n, seed);
  }
  return {};
}

std::vector<Key> SampleKeys(const std::vector<Key>& keys, size_t count,
                            uint64_t seed) {
  assert(!keys.empty());
  Xorshift128Plus rng(seed);
  std::vector<Key> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(keys[rng.NextBounded(keys.size())]);
  }
  return out;
}

std::vector<Key> SampleRange(const std::vector<Key>& keys, size_t count,
                             uint64_t seed) {
  assert(!keys.empty());
  Xorshift128Plus rng(seed);
  const Key lo = keys.front();
  const Key hi = keys.back();
  std::vector<Key> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(lo + rng.NextBounded(hi - lo + 1));
  }
  return out;
}

}  // namespace li::data
