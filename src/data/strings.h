// String dataset generators:
//
//  * GenDocIds — hierarchical document identifiers standing in for the
//    paper's "10M non-continuous document-ids of a large web index"
//    (§3.7.2): lexicographically sortable strings with long shared
//    prefixes and skewed fan-out.
//  * GenUrls  — benign and phishing-style URLs standing in for Google's
//    transparency-report blacklist (§5.2). Phishing URLs carry learnable
//    lexical structure (typosquats, IP hosts, suspicious tokens) so a
//    character-level classifier can separate the classes — the property
//    the learned Bloom filter exploits.

#ifndef LI_DATA_STRINGS_H_
#define LI_DATA_STRINGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace li::data {

/// Sorted, deduplicated document-id strings.
std::vector<std::string> GenDocIds(size_t n, uint64_t seed = 42);

/// A labelled URL corpus: keys (phishing, in the set) and non-keys
/// (benign, outside the set) plus a separate "whitelisted but
/// suspicious-looking" pool to reproduce the covariate-shift experiment.
struct UrlCorpus {
  std::vector<std::string> keys;              // blacklisted phishing URLs
  std::vector<std::string> random_negatives;  // random valid URLs
  std::vector<std::string> whitelisted;       // benign but phishing-like
};

UrlCorpus GenUrls(size_t num_keys, size_t num_negatives, uint64_t seed = 42);

}  // namespace li::data

#endif  // LI_DATA_STRINGS_H_
