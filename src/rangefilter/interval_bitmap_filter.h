// Plain interval-bitmap range filter: the fixed-width baseline the
// learned construction is compared against (bench_rangefilter,
// docs/RANGEFILTER.md). The key domain [min_key, max_key] is cut into
// equal-width blocks — `bits_per_key * n` of them — and a block's bit is
// set iff any built key falls inside it. A query scans the bits of the
// blocks its clamped range overlaps.
//
// Zero false negatives for the same reason as the learned filter (the
// key -> block map, here exact integer division, is monotone), but the
// block *width* is dictated by the total key span rather than the local
// key density: on clustered or skewed key sets a block in a dense region
// covers many keys, so adjacent-gap queries there almost always hit a
// populated block. That asymmetry is the point of the comparison.
//
// Satisfies index::RangeFilter and the index::Snapshottable section
// protocol ("ib/meta" + "ib/bits", zero-copy reopen).

#ifndef LI_RANGEFILTER_INTERVAL_BITMAP_FILTER_H_
#define LI_RANGEFILTER_INTERVAL_BITMAP_FILTER_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/range_filter.h"
#include "index/snapshottable.h"
#include "rangefilter/block_bitmap.h"
#include "rangefilter/filter_meta.h"
#include "snapshot/arena.h"
#include "snapshot/snapshot.h"

namespace li::rangefilter {

struct IntervalBitmapFilterConfig {
  /// Bitmap bits per distinct key; the block width follows as
  /// key_span / (bits_per_key * n).
  double bits_per_key = 16.0;
};

class IntervalBitmapFilter {
 public:
  IntervalBitmapFilter() = default;

  /// Builds over `keys` (any order, duplicates collapse). An empty key
  /// set builds an empty filter: every query answers false.
  Status Build(std::span<const uint64_t> keys,
               const IntervalBitmapFilterConfig& config = {}) {
    if (config.bits_per_key <= 0.0 || config.bits_per_key > 4096.0) {
      return Status::InvalidArgument(
          "IntervalBitmapFilter: bits_per_key out of range");
    }
    config_ = config;
    std::vector<uint64_t> sorted(keys.begin(), keys.end());
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    num_keys_ = sorted.size();
    if (num_keys_ == 0) {
      bits_.clear();
      num_blocks_ = 0;
      block_width_ = 0;
      min_key_ = max_key_ = 0;
      return Status::OK();
    }
    min_key_ = sorted.front();
    max_key_ = sorted.back();
    const uint64_t span = max_key_ - min_key_;  // inclusive span - 1
    const uint64_t target_blocks = static_cast<uint64_t>(std::max<int64_t>(
        1,
        std::llround(config.bits_per_key * static_cast<double>(num_keys_))));
    // Ceil-divide the span across the block budget; the +1s keep the
    // arithmetic exact at span = 2^64 - 1 without wider intermediates.
    block_width_ = span / target_blocks + 1;
    num_blocks_ = span / block_width_ + 1;

    std::vector<uint64_t> words((num_blocks_ + 63) / 64, 0);
    for (const uint64_t k : sorted) {
      SetBit(words, (k - min_key_) / block_width_);
    }
    bits_ = snapshot::FlatVec<uint64_t>::Adopt(std::move(words));
    return Status::OK();
  }

  bool MightContainRange(uint64_t lo, uint64_t hi) const {
    return hi > lo && QueryInclusive(lo, hi - 1);
  }

  bool MightContain(uint64_t key) const { return QueryInclusive(key, key); }

  double MeasuredRangeFpr(
      std::span<const index::RangeQuery> empty_queries) const {
    return index::MeasureRangeFprOver(*this, empty_queries);
  }

  size_t SizeBytes() const { return bits_.size() * sizeof(uint64_t); }
  size_t num_keys() const { return num_keys_; }
  uint64_t num_blocks() const { return num_blocks_; }
  uint64_t block_width() const { return block_width_; }
  const IntervalBitmapFilterConfig& config() const { return config_; }

  // ---- Persistence (index::Snapshottable; docs/PERSISTENCE.md) ----

  Status WriteSections(snapshot::SnapshotWriter& writer,
                       const std::string& prefix) const {
    RangeFilterSnapshotMeta meta;
    meta.filter_kind = static_cast<uint64_t>(FilterKind::kIntervalBitmap);
    meta.num_keys = num_keys_;
    meta.bitmap_bits = num_blocks_;
    meta.num_segments = num_keys_ == 0 ? 0 : 1;
    meta.domain_lo = min_key_;
    meta.domain_hi = max_key_;
    meta.block_width = block_width_;
    meta.bits_per_key = config_.bits_per_key;
    LI_RETURN_IF_ERROR(writer.AddPod(prefix + "ib/meta", meta,
                                     snapshot::SectionKind::kRangeFilterMeta));
    if (num_keys_ == 0) return Status::OK();
    return writer.AddArray(prefix + "ib/bits", bits_.span(),
                           snapshot::SectionKind::kBitmap);
  }

  Status LoadSections(const snapshot::SnapshotReader& reader,
                      const std::string& prefix) {
    RangeFilterSnapshotMeta meta;
    LI_RETURN_IF_ERROR(reader.GetPod(prefix + "ib/meta", &meta));
    if (meta.filter_kind !=
        static_cast<uint64_t>(FilterKind::kIntervalBitmap)) {
      return Status::InvalidArgument(
          "IntervalBitmapFilter: snapshot holds a different filter kind");
    }
    config_.bits_per_key = meta.bits_per_key;
    num_keys_ = meta.num_keys;
    if (num_keys_ == 0) {
      bits_.clear();
      num_blocks_ = 0;
      block_width_ = 0;
      min_key_ = max_key_ = 0;
      return Status::OK();
    }
    if (meta.block_width == 0 || meta.bitmap_bits == 0 ||
        meta.domain_hi < meta.domain_lo ||
        (meta.domain_hi - meta.domain_lo) / meta.block_width + 1 !=
            meta.bitmap_bits) {
      return Status::InvalidArgument(
          "IntervalBitmapFilter: snapshot meta geometry is corrupt");
    }
    auto bits = reader.GetArray<uint64_t>(prefix + "ib/bits");
    if (!bits.ok()) return bits.status();
    if (bits.value().size() != (meta.bitmap_bits + 63) / 64) {
      return Status::InvalidArgument(
          "IntervalBitmapFilter: snapshot bit section disagrees with meta");
    }
    min_key_ = meta.domain_lo;
    max_key_ = meta.domain_hi;
    block_width_ = meta.block_width;
    num_blocks_ = meta.bitmap_bits;
    bits_ =
        snapshot::FlatVec<uint64_t>::View(bits.value(), reader.keepalive());
    return Status::OK();
  }

  Status WriteSnapshot(const std::string& path) const {
    return index::WriteSnapshotViaSections(*this, path);
  }

  static Result<IntervalBitmapFilter> OpenSnapshot(
      const std::string& path, const snapshot::OpenOptions& opts = {}) {
    return index::OpenSnapshotViaSections<IntervalBitmapFilter>(path, opts);
  }

 private:
  bool QueryInclusive(uint64_t lo, uint64_t hi) const {
    if (num_keys_ == 0 || hi < min_key_ || lo > max_key_) return false;
    const uint64_t a = std::max(lo, min_key_) - min_key_;
    const uint64_t b = std::min(hi, max_key_) - min_key_;
    return AnyBitInRange(bits_.span(), a / block_width_, b / block_width_);
  }

  IntervalBitmapFilterConfig config_;
  size_t num_keys_ = 0;
  uint64_t min_key_ = 0;
  uint64_t max_key_ = 0;
  uint64_t block_width_ = 0;
  uint64_t num_blocks_ = 0;
  snapshot::FlatVec<uint64_t> bits_;
};

}  // namespace li::rangefilter

#endif  // LI_RANGEFILTER_INTERVAL_BITMAP_FILTER_H_
