// Learned segmented range filter (Oasis-class): answers "might any built
// key lie in [lo, hi)?" with zero false negatives and a memory budget of
// a few bitmap bits per key.
//
// Construction: the sorted key set is cut into disjoint segments of
// `keys_per_segment` keys each — an exact equal-mass (quantile) partition
// of the empirical CDF, so dense regions get many narrow segments and
// sparse regions few wide ones. Each segment carries
//   * its covered key interval [key_lo, key_hi],
//   * a per-segment linear CDF model (models::LinearModel fit of
//     key -> block position, the same closed-form machinery as the RMI's
//     second stage), and
//   * `bits_per_key * segment_keys` bits of a shared block bitmap; a
//     key sets the bit of the block its model maps it to.
//
// Query [lo, hi] (internally inclusive): binary-search the segment table
// for the first segment overlapping the range, then
//   * a segment *fully inside* the range answers true immediately —
//     segments are built over real keys, so its key_lo is a witness;
//   * the (at most two) boundary segments clamp the range to their key
//     interval, resolve both clamped endpoints through the segment model,
//     and scan the covered block bits;
//   * the inter-segment gaps carry no bits and answer false for free —
//     this is where the learned layout beats the fixed-width baseline on
//     gapped and skewed key sets (bench_rangefilter).
//
// Zero-false-negative argument: the model is clamped to non-negative
// slope, and IEEE multiply/add/floor are weakly monotone, so
// BlockOf(seg, k) is non-decreasing in k. For any built key k in
// [lo, hi], k lies in some segment whose clamped query endpoints a <= k
// <= b give BlockOf(a) <= BlockOf(k) <= BlockOf(b); k's bit was set at
// BlockOf(k) during Build, so the scanned block range contains it. The
// same argument covers the baseline (exact integer division is monotone).
// False positives arise only when a scanned block was populated by a key
// *outside* [lo, hi]; the range FPR is roughly (2 + query width in
// blocks) / bits_per_key for adjacent-gap queries (docs/RANGEFILTER.md).
//
// Satisfies index::RangeFilter and the index::Snapshottable section
// protocol: segments and bitmap are flat sections served zero-copy from
// a reopened mapping (FlatVec), like every other index class.

#ifndef LI_RANGEFILTER_LEARNED_RANGE_FILTER_H_
#define LI_RANGEFILTER_LEARNED_RANGE_FILTER_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/range_filter.h"
#include "index/snapshottable.h"
#include "models/linear.h"
#include "rangefilter/block_bitmap.h"
#include "rangefilter/filter_meta.h"
#include "snapshot/arena.h"
#include "snapshot/snapshot.h"

namespace li::rangefilter {

struct LearnedRangeFilterConfig {
  /// Bitmap bits per distinct key (segment metadata is extra and reported
  /// through SizeBytes). Range FPR on adjacent-gap queries shrinks
  /// roughly as 1/bits_per_key; see the tuning table in
  /// docs/RANGEFILTER.md.
  double bits_per_key = 16.0;
  /// Segment width in keys (equal-mass quantile cut). Smaller segments
  /// fit the local CDF tighter at ~48 bytes of metadata each.
  size_t keys_per_segment = 256;
};

class LearnedRangeFilter {
 public:
  /// One quantile segment: covered key interval, linear CDF model, and
  /// its bit window inside the shared bitmap. Flat and trivially
  /// copyable so the table snapshots as one section.
  struct Segment {
    uint64_t key_lo = 0;
    uint64_t key_hi = 0;
    uint64_t bit_offset = 0;
    uint32_t num_blocks = 0;
    uint32_t reserved = 0;
    double slope = 0.0;
    double intercept = 0.0;
  };
  static_assert(sizeof(Segment) == 48);
  static_assert(std::is_trivially_copyable_v<Segment>);

  LearnedRangeFilter() = default;

  /// Builds over `keys` (any order, duplicates collapse). An empty key
  /// set builds an empty filter: every query answers false.
  Status Build(std::span<const uint64_t> keys,
               const LearnedRangeFilterConfig& config = {}) {
    if (config.bits_per_key <= 0.0 || config.bits_per_key > 4096.0) {
      return Status::InvalidArgument(
          "LearnedRangeFilter: bits_per_key out of range");
    }
    if (config.keys_per_segment == 0) {
      return Status::InvalidArgument(
          "LearnedRangeFilter: keys_per_segment must be positive");
    }
    config_ = config;
    std::vector<uint64_t> sorted(keys.begin(), keys.end());
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    num_keys_ = sorted.size();
    if (num_keys_ == 0) {
      segments_.clear();
      bits_.clear();
      bitmap_bits_ = 0;
      return Status::OK();
    }

    const size_t num_segments =
        (num_keys_ + config.keys_per_segment - 1) / config.keys_per_segment;
    std::vector<Segment> segments;
    segments.reserve(num_segments);
    uint64_t bit_cursor = 0;
    std::vector<double> xs, ys;
    for (size_t s = 0; s < num_segments; ++s) {
      const size_t a = s * config.keys_per_segment;
      const size_t b = std::min(a + config.keys_per_segment, num_keys_);
      const size_t count = b - a;
      Segment seg;
      seg.key_lo = sorted[a];
      seg.key_hi = sorted[b - 1];
      seg.bit_offset = bit_cursor;
      seg.num_blocks = static_cast<uint32_t>(std::max<int64_t>(
          1, std::llround(config.bits_per_key * static_cast<double>(count))));
      // Fit key -> block-center position; distinct sorted keys give a
      // positive covariance, so the least-squares slope is monotone
      // (>= 0) except in the all-equal degenerate case, where the fit
      // falls back to a constant model — still monotone.
      xs.clear();
      ys.clear();
      xs.reserve(count);
      ys.reserve(count);
      for (size_t i = a; i < b; ++i) {
        xs.push_back(static_cast<double>(sorted[i]));
        ys.push_back((static_cast<double>(i - a) + 0.5) *
                     static_cast<double>(seg.num_blocks) /
                     static_cast<double>(count));
      }
      models::LinearModel model;
      LI_RETURN_IF_ERROR(model.Fit(xs, ys));
      seg.slope = std::max(0.0, model.slope());
      seg.intercept = seg.slope == model.slope()
                          ? model.intercept()
                          : static_cast<double>(seg.num_blocks) / 2.0;
      segments.push_back(seg);
      bit_cursor += seg.num_blocks;
    }
    bitmap_bits_ = bit_cursor;

    std::vector<uint64_t> words((bitmap_bits_ + 63) / 64, 0);
    for (size_t s = 0; s < segments.size(); ++s) {
      const Segment& seg = segments[s];
      const size_t a = s * config.keys_per_segment;
      const size_t b = std::min(a + config.keys_per_segment, num_keys_);
      for (size_t i = a; i < b; ++i) {
        SetBit(words, seg.bit_offset + BlockOf(seg, sorted[i]));
      }
    }
    segments_ = snapshot::FlatVec<Segment>::Adopt(std::move(segments));
    bits_ = snapshot::FlatVec<uint64_t>::Adopt(std::move(words));
    return Status::OK();
  }

  /// Might any built key lie in the half-open range [lo, hi)? Never
  /// false when one does; hi <= lo is empty by definition.
  bool MightContainRange(uint64_t lo, uint64_t hi) const {
    return hi > lo && QueryInclusive(lo, hi - 1);
  }

  /// The degenerate point probe [key, key + 1), 2^64-1-safe.
  bool MightContain(uint64_t key) const { return QueryInclusive(key, key); }

  double MeasuredRangeFpr(
      std::span<const index::RangeQuery> empty_queries) const {
    return index::MeasureRangeFprOver(*this, empty_queries);
  }

  size_t SizeBytes() const {
    return segments_.size() * sizeof(Segment) +
           bits_.size() * sizeof(uint64_t);
  }
  size_t num_keys() const { return num_keys_; }
  size_t num_segments() const { return segments_.size(); }
  uint64_t bitmap_bits() const { return bitmap_bits_; }
  const LearnedRangeFilterConfig& config() const { return config_; }

  // ---- Persistence (index::Snapshottable; docs/PERSISTENCE.md) ----
  // Sections: "rf/meta" (kRangeFilterMeta geometry, tooling-readable),
  // "rf/segs" (kSegments table), "rf/bits" (kBitmap words). A reopened
  // filter serves queries zero-copy out of the mapping.

  Status WriteSections(snapshot::SnapshotWriter& writer,
                       const std::string& prefix) const {
    RangeFilterSnapshotMeta meta;
    meta.filter_kind = static_cast<uint64_t>(FilterKind::kLearnedSegmented);
    meta.num_keys = num_keys_;
    meta.bitmap_bits = bitmap_bits_;
    meta.num_segments = segments_.size();
    meta.domain_lo = segments_.empty() ? 0 : segments_[0].key_lo;
    meta.domain_hi =
        segments_.empty() ? 0 : segments_[segments_.size() - 1].key_hi;
    meta.bits_per_key = config_.bits_per_key;
    LI_RETURN_IF_ERROR(writer.AddPod(prefix + "rf/meta", meta,
                                     snapshot::SectionKind::kRangeFilterMeta));
    if (num_keys_ == 0) return Status::OK();
    LI_RETURN_IF_ERROR(writer.AddArray(prefix + "rf/segs", segments_.span(),
                                       snapshot::SectionKind::kSegments));
    return writer.AddArray(prefix + "rf/bits", bits_.span(),
                           snapshot::SectionKind::kBitmap);
  }

  Status LoadSections(const snapshot::SnapshotReader& reader,
                      const std::string& prefix) {
    RangeFilterSnapshotMeta meta;
    LI_RETURN_IF_ERROR(reader.GetPod(prefix + "rf/meta", &meta));
    if (meta.filter_kind !=
        static_cast<uint64_t>(FilterKind::kLearnedSegmented)) {
      return Status::InvalidArgument(
          "LearnedRangeFilter: snapshot holds a different filter kind");
    }
    config_.bits_per_key = meta.bits_per_key;
    num_keys_ = meta.num_keys;
    bitmap_bits_ = meta.bitmap_bits;
    if (num_keys_ == 0) {
      segments_.clear();
      bits_.clear();
      return Status::OK();
    }
    auto segs = reader.GetArray<Segment>(prefix + "rf/segs");
    if (!segs.ok()) return segs.status();
    auto bits = reader.GetArray<uint64_t>(prefix + "rf/bits");
    if (!bits.ok()) return bits.status();
    if (segs.value().size() != meta.num_segments ||
        bits.value().size() != (meta.bitmap_bits + 63) / 64) {
      return Status::InvalidArgument(
          "LearnedRangeFilter: snapshot sections disagree with meta");
    }
    // Validate segment geometry against the bitmap before serving: a
    // corrupted table must fail Open, never index out of the mapping.
    uint64_t cursor = 0;
    for (const Segment& seg : segs.value()) {
      if (seg.bit_offset != cursor || seg.num_blocks == 0 ||
          seg.key_hi < seg.key_lo) {
        return Status::InvalidArgument(
            "LearnedRangeFilter: snapshot segment table is corrupt");
      }
      cursor += seg.num_blocks;
    }
    if (cursor != meta.bitmap_bits) {
      return Status::InvalidArgument(
          "LearnedRangeFilter: segment blocks disagree with bitmap size");
    }
    segments_ =
        snapshot::FlatVec<Segment>::View(segs.value(), reader.keepalive());
    bits_ =
        snapshot::FlatVec<uint64_t>::View(bits.value(), reader.keepalive());
    return Status::OK();
  }

  Status WriteSnapshot(const std::string& path) const {
    return index::WriteSnapshotViaSections(*this, path);
  }

  static Result<LearnedRangeFilter> OpenSnapshot(
      const std::string& path, const snapshot::OpenOptions& opts = {}) {
    return index::OpenSnapshotViaSections<LearnedRangeFilter>(path, opts);
  }

 private:
  /// Weakly monotone in `key` (non-negative slope, IEEE rounding
  /// preserves <=, clamped floor) — the zero-false-negative lynchpin.
  static uint32_t BlockOf(const Segment& seg, uint64_t key) {
    const double p = seg.slope * static_cast<double>(key) + seg.intercept;
    if (!(p > 0.0)) return 0;  // also catches NaN from corrupt models
    if (p >= static_cast<double>(seg.num_blocks)) return seg.num_blocks - 1;
    return static_cast<uint32_t>(p);
  }

  /// Inclusive-range query core; lo <= hi required.
  bool QueryInclusive(uint64_t lo, uint64_t hi) const {
    if (num_keys_ == 0) return false;
    const std::span<const Segment> segs = segments_.span();
    const Segment* seg = std::partition_point(
        segs.data(), segs.data() + segs.size(),
        [&](const Segment& s) { return s.key_hi < lo; });
    for (; seg != segs.data() + segs.size() && seg->key_lo <= hi; ++seg) {
      if (lo <= seg->key_lo && seg->key_hi <= hi) {
        return true;  // fully covered segment: key_lo is a real key
      }
      const uint64_t a = std::max(lo, seg->key_lo);
      const uint64_t b = std::min(hi, seg->key_hi);
      const uint64_t bit_lo = seg->bit_offset + BlockOf(*seg, a);
      const uint64_t bit_hi = seg->bit_offset + BlockOf(*seg, b);
      if (AnyBitInRange(bits_.span(), bit_lo, bit_hi)) return true;
    }
    return false;
  }

  LearnedRangeFilterConfig config_;
  size_t num_keys_ = 0;
  uint64_t bitmap_bits_ = 0;
  /// Owned when built, zero-copy mapped views when opened from a
  /// snapshot.
  snapshot::FlatVec<Segment> segments_;
  snapshot::FlatVec<uint64_t> bits_;
};

}  // namespace li::rangefilter

#endif  // LI_RANGEFILTER_LEARNED_RANGE_FILTER_H_
