// The shared snapshot-meta POD for range filters. Both constructions
// persist one section of kind SectionKind::kRangeFilterMeta holding this
// struct, so tooling (tools/snapshot_inspect) can summarize any range
// filter found in a snapshot — segment count, bitmap bits, bits per key —
// without knowing which construction wrote it.

#ifndef LI_RANGEFILTER_FILTER_META_H_
#define LI_RANGEFILTER_FILTER_META_H_

#include <cstdint>
#include <type_traits>

namespace li::rangefilter {

/// Which construction a kRangeFilterMeta section describes.
enum class FilterKind : uint64_t {
  kLearnedSegmented = 1,  // per-segment CDF models + shared bitmap
  kIntervalBitmap = 2,    // fixed-width blocks over [domain_lo, domain_hi]
};

inline const char* FilterKindName(FilterKind k) {
  switch (k) {
    case FilterKind::kLearnedSegmented: return "learned-segmented";
    case FilterKind::kIntervalBitmap: return "interval-bitmap";
  }
  return "unknown";
}

struct RangeFilterSnapshotMeta {
  uint64_t filter_kind = 0;  // FilterKind
  uint64_t num_keys = 0;     // distinct built keys
  uint64_t bitmap_bits = 0;  // total block bits (excl. metadata)
  uint64_t num_segments = 0; // 1 for the interval construction
  uint64_t domain_lo = 0;    // smallest built key
  uint64_t domain_hi = 0;    // largest built key
  uint64_t block_width = 0;  // interval construction only; 0 for learned
  double bits_per_key = 0.0; // configured bitmap bits per key
};
static_assert(sizeof(RangeFilterSnapshotMeta) == 64);
static_assert(std::is_trivially_copyable_v<RangeFilterSnapshotMeta>);

}  // namespace li::rangefilter

#endif  // LI_RANGEFILTER_FILTER_META_H_
