// Shared key-set and query generators for the range-filter layer: the
// conformance/property suites, bench_rangefilter, and the LIF range
// sweep all draw from here so "uniform / zipf / adversarial-gap" and
// "guaranteed-empty query" mean the same thing everywhere.
//
// Key sets (sorted, deduplicated):
//   * uniform        — n draws over a fixed domain; gaps concentrate
//                      around span/n.
//   * zipf           — ZipfGenerator ranks pushed through a triangular
//                      transform, so key *density* is skewed: a dense
//                      head with unit-scale gaps and a sparse tail with
//                      huge ones. Fixed-width blocks must straddle both.
//   * adversarial-gap— tight clusters (spacing 1..4) separated by ~2^40
//                      voids: the worst case for a span-proportioned
//                      block grid, the natural case for a quantile one.
//
// Empty queries mix the two shapes that matter operationally:
//   * correlated     — a range wedged strictly inside the gap between
//                      two adjacent keys (the adversarial near-miss an
//                      LSM probe sees);
//   * uncorrelated   — lo drawn uniformly over the key domain, clipped
//                      to its surrounding gap (the analytics predicate
//                      case), plus a sliver fully outside [min, max].
// Both are empty by construction, so MeasuredRangeFpr needs no oracle.

#ifndef LI_RANGEFILTER_WORKLOAD_H_
#define LI_RANGEFILTER_WORKLOAD_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "index/range_filter.h"

namespace li::rangefilter {

inline std::vector<uint64_t> GenUniformKeys(size_t n, uint64_t seed,
                                            uint64_t domain = uint64_t{1}
                                                              << 40) {
  Xorshift128Plus rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) keys.push_back(rng.NextBounded(domain));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

/// Skewed-density keys: zipf ranks (hot = small) mapped through
/// r -> r(r+1)/2, so consecutive ranks are 1 apart near the head and
/// ~8n apart in the tail — a smooth density gradient of ~n^2/2 span.
inline std::vector<uint64_t> GenZipfKeys(size_t n, uint64_t seed,
                                         double s = 0.9) {
  const size_t rank_space = std::max<size_t>(8 * n, 64);
  ZipfGenerator zipf(rank_space, s, seed);
  std::vector<uint64_t> keys;
  keys.reserve(2 * n);
  // Sampling a heavy head revisits hot ranks; cap the draws and fill any
  // shortfall deterministically from the head so the set size is exact.
  for (size_t attempts = 0; attempts < 64 * n && keys.size() < 2 * n;
       ++attempts) {
    const uint64_t r = zipf.Next();
    keys.push_back(r * (r + 1) / 2);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (uint64_t r = 0; keys.size() < n && r < rank_space; ++r) {
    const uint64_t k = r * (r + 1) / 2;
    if (!std::binary_search(keys.begin(), keys.end(), k)) keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  if (keys.size() > n) keys.resize(n);
  return keys;
}

/// Tight clusters separated by huge voids. `n` splits into clusters of
/// ~`cluster_size` keys with spacing 1..4; cluster starts are ~`gap`
/// apart.
inline std::vector<uint64_t> GenAdversarialGapKeys(
    size_t n, uint64_t seed, size_t cluster_size = 512,
    uint64_t gap = uint64_t{1} << 40) {
  Xorshift128Plus rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  uint64_t cursor = rng.NextBounded(gap);
  while (keys.size() < n) {
    const size_t take = std::min(cluster_size, n - keys.size());
    for (size_t i = 0; i < take; ++i) {
      cursor += 1 + rng.NextBounded(4);
      keys.push_back(cursor);
    }
    cursor += gap / 2 + rng.NextBounded(gap);
  }
  return keys;  // construction is strictly increasing: sorted and unique
}

/// Duplicate-heavy draw (for the conformance suites): n draws over a
/// small distinct-key pool, unsorted, so Build's collapse path is
/// exercised.
inline std::vector<uint64_t> GenDuplicateHeavyKeys(size_t n, uint64_t seed,
                                                   size_t distinct = 0) {
  if (distinct == 0) distinct = std::max<size_t>(1, n / 8);
  Xorshift128Plus rng(seed);
  std::vector<uint64_t> pool;
  pool.reserve(distinct);
  for (size_t i = 0; i < distinct; ++i) {
    pool.push_back(rng.Next() >> 20);
  }
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(pool[rng.NextBounded(pool.size())]);
  }
  return keys;
}

struct EmptyQueryConfig {
  size_t count = 10'000;
  /// Widest range generated, in key-space units (clipped to the hosting
  /// gap, which is what actually bounds the correlated shape).
  uint64_t max_width = 1024;
  /// Fraction of queries wedged into an adjacent-key gap; the rest are
  /// uniform over the domain (clipped to their gap) with a ~5% sliver
  /// fully outside [min, max].
  double correlated_fraction = 0.5;
};

/// Ranges over `sorted_keys`' gaps that are empty by construction.
/// Requires sorted, deduplicated keys; returns fewer than `count` only
/// when the key set has no usable gap at all.
inline std::vector<index::RangeQuery> GenEmptyRanges(
    std::span<const uint64_t> sorted_keys, uint64_t seed,
    const EmptyQueryConfig& config = {}) {
  std::vector<index::RangeQuery> out;
  if (sorted_keys.size() < 2) return out;
  Xorshift128Plus rng(seed);
  out.reserve(config.count);
  const uint64_t min_key = sorted_keys.front();
  const uint64_t max_key = sorted_keys.back();
  // An empty range inside the gap (keys[i], keys[i+1]): lo in
  // [keys[i]+1, keys[i+1]-1], hi (exclusive) at most keys[i+1].
  auto emit_in_gap = [&](size_t i) -> bool {
    const uint64_t gap = sorted_keys[i + 1] - sorted_keys[i];
    if (gap < 2) return false;
    const uint64_t lo = sorted_keys[i] + 1 + rng.NextBounded(gap - 1);
    const uint64_t avail = sorted_keys[i + 1] - lo;
    const uint64_t width =
        1 + rng.NextBounded(std::min<uint64_t>(config.max_width, avail));
    out.push_back({lo, lo + width});
    return true;
  };
  size_t failures = 0;
  while (out.size() < config.count && failures < 64 * config.count) {
    const double shape = rng.NextDouble();
    if (shape < config.correlated_fraction) {
      if (!emit_in_gap(rng.NextBounded(sorted_keys.size() - 1))) ++failures;
      continue;
    }
    if (shape > 1.0 - 0.05 * (1.0 - config.correlated_fraction) &&
        (min_key > 1 || max_key < ~uint64_t{0} - 1)) {
      // Fully out-of-domain sliver.
      if (min_key > 1 && (rng.Next() & 1)) {
        const uint64_t lo = rng.NextBounded(min_key - 1);
        const uint64_t width =
            1 + rng.NextBounded(std::min<uint64_t>(config.max_width,
                                                   min_key - 1 - lo));
        out.push_back({lo, lo + width});
        continue;
      }
      if (max_key < ~uint64_t{0} - 1) {
        const uint64_t room = ~uint64_t{0} - max_key - 1;
        const uint64_t off = rng.NextBounded(room);
        const uint64_t lo = max_key + 1 + off;
        const uint64_t width =
            1 + rng.NextBounded(std::min<uint64_t>(config.max_width,
                                                   room - off));
        out.push_back({lo, lo + width});
        continue;
      }
    }
    // Uncorrelated: a uniform point in the covered domain, clipped to
    // the gap that hosts it.
    const uint64_t span = max_key - min_key;
    const uint64_t point = min_key + rng.NextBounded(span + 1 == 0
                                                         ? ~uint64_t{0}
                                                         : span + 1);
    const auto it = std::lower_bound(sorted_keys.begin(), sorted_keys.end(),
                                     point);
    if (it == sorted_keys.begin() || it == sorted_keys.end() ||
        *it == point) {
      ++failures;
      continue;
    }
    if (!emit_in_gap(static_cast<size_t>(it - sorted_keys.begin()) - 1)) {
      ++failures;
    }
  }
  return out;
}

/// Ranges guaranteed to contain at least one built key — the witness set
/// the zero-false-negative checks drive (tests, bench oracle gates).
inline std::vector<index::RangeQuery> GenWitnessRanges(
    std::span<const uint64_t> sorted_keys, uint64_t seed, size_t count,
    uint64_t max_width = 1024) {
  std::vector<index::RangeQuery> out;
  if (sorted_keys.empty()) return out;
  Xorshift128Plus rng(seed);
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const uint64_t k = sorted_keys[rng.NextBounded(sorted_keys.size())];
    const uint64_t back = rng.NextBounded(max_width);
    const uint64_t lo = k >= back ? k - back : 0;
    const uint64_t head_room = ~uint64_t{0} - k;
    const uint64_t fwd =
        1 + rng.NextBounded(std::min<uint64_t>(max_width, head_room));
    out.push_back({lo, k + fwd});  // lo <= k < k + fwd
  }
  return out;
}

}  // namespace li::rangefilter

#endif  // LI_RANGEFILTER_WORKLOAD_H_
