// Shared block-bitmap primitives for the range filters: one bit per
// key-space block, set iff any built key falls in the block. Both filter
// constructions (learned segmented, fixed-width interval) reduce a range
// query to "is any bit set in the inclusive bit range [lo, hi]?", so the
// scan lives here once, word-at-a-time.

#ifndef LI_RANGEFILTER_BLOCK_BITMAP_H_
#define LI_RANGEFILTER_BLOCK_BITMAP_H_

#include <cstdint>
#include <span>

namespace li::rangefilter {

inline void SetBit(std::span<uint64_t> words, uint64_t bit) {
  words[bit >> 6] |= uint64_t{1} << (bit & 63);
}

inline bool TestBit(std::span<const uint64_t> words, uint64_t bit) {
  return (words[bit >> 6] >> (bit & 63)) & 1;
}

/// Any bit set in the inclusive range [lo_bit, hi_bit]? Masks the two
/// boundary words and scans whole words between them; the common query
/// (a narrow range inside one segment) touches one or two words.
inline bool AnyBitInRange(std::span<const uint64_t> words, uint64_t lo_bit,
                          uint64_t hi_bit) {
  if (hi_bit < lo_bit) return false;
  const uint64_t lo_word = lo_bit >> 6;
  const uint64_t hi_word = hi_bit >> 6;
  const uint64_t lo_mask = ~uint64_t{0} << (lo_bit & 63);
  const uint64_t hi_mask =
      (hi_bit & 63) == 63 ? ~uint64_t{0}
                          : ((uint64_t{1} << ((hi_bit & 63) + 1)) - 1);
  if (lo_word == hi_word) return (words[lo_word] & lo_mask & hi_mask) != 0;
  if ((words[lo_word] & lo_mask) != 0) return true;
  for (uint64_t w = lo_word + 1; w < hi_word; ++w) {
    if (words[w] != 0) return true;
  }
  return (words[hi_word] & hi_mask) != 0;
}

}  // namespace li::rangefilter

#endif  // LI_RANGEFILTER_BLOCK_BITMAP_H_
