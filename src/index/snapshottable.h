// Snapshottable: the persistence contract. An index class satisfies it by
// providing
//   Status WriteSnapshot(const std::string& path) const;
//   static Result<I> OpenSnapshot(const std::string& path,
//                                 const snapshot::OpenOptions& = {});
// where OpenSnapshot mmaps the file read-only and the returned index
// serves lookups directly out of the mapping (zero-copy), bit-identical
// to the freshly built instance the snapshot was taken from.
//
// Classes implement the pair via the finer-grained *section* protocol —
//   Status WriteSections(snapshot::SnapshotWriter&, const std::string&
//                        prefix) const;
//   Status LoadSections(const snapshot::SnapshotReader&, const
//                       std::string& prefix);
// — which is what composite indexes (Delta/Concurrent/Sharded/LIF) call
// on their components with extended prefixes ("s3/base/…"), so one file
// holds a whole index tree. The helpers below turn a section
// implementation into the whole-file pair. Semantics, the quiesce
// protocol for concurrent classes, and format details: docs/PERSISTENCE.md.

#ifndef LI_INDEX_SNAPSHOTTABLE_H_
#define LI_INDEX_SNAPSHOTTABLE_H_

#include <concepts>
#include <span>
#include <string>

#include "common/status.h"
#include "snapshot/snapshot.h"

namespace li::index {

/// Whole-file persistence pair.
template <typename I>
concept Snapshottable = requires(const I& ci, const std::string& path) {
  { ci.WriteSnapshot(path) } -> std::same_as<Status>;
  { I::OpenSnapshot(path) } -> std::same_as<Result<I>>;
};

/// Section-level persistence (composable into a parent's snapshot file).
template <typename I>
concept SectionSnapshottable =
    requires(const I& ci, I& mi, snapshot::SnapshotWriter& w,
             const snapshot::SnapshotReader& r, const std::string& prefix) {
      { ci.WriteSections(w, prefix) } -> std::same_as<Status>;
      { mi.LoadSections(r, prefix) } -> std::same_as<Status>;
    };

/// Section persistence where the key array can live outside the
/// component's own sections: the parent persists the keys once and hands
/// the loaded component a span over them (WriteSections(..., false)
/// skips the key section; LoadSections(..., data) points the component
/// at the parent's array). RmiIndex models this.
template <typename I>
concept DataSpanSnapshottable =
    requires(const I& ci, I& mi, snapshot::SnapshotWriter& w,
             const snapshot::SnapshotReader& r, const std::string& prefix,
             std::span<const typename I::key_type> data) {
      { ci.WriteSections(w, prefix, false) } -> std::same_as<Status>;
      { mi.LoadSections(r, prefix, data) } -> std::same_as<Status>;
    };

/// Writes `index`'s sections (empty prefix) as a complete snapshot file.
template <typename I>
Status WriteSnapshotViaSections(const I& index, const std::string& path) {
  snapshot::SnapshotWriter writer;
  LI_RETURN_IF_ERROR(index.WriteSections(writer, ""));
  return writer.WriteFile(path);
}

/// Opens a snapshot written by WriteSnapshotViaSections.
template <typename I>
Result<I> OpenSnapshotViaSections(const std::string& path,
                                  const snapshot::OpenOptions& opts = {}) {
  auto reader = snapshot::SnapshotReader::Open(path, opts);
  if (!reader.ok()) return reader.status();
  I out;
  Status st = out.LoadSections(reader.value(), "");
  if (!st.ok()) return st;
  return out;
}

}  // namespace li::index

#endif  // LI_INDEX_SNAPSHOTTABLE_H_
