// KeyTraits: the one mapping Key -> double that makes the RMI core
// key-generic. Models in this library regress position against a single
// real-valued feature (§3.2); KeyTraits supplies that feature for every
// supported key type so `RmiIndex<uint64_t>`, `RmiIndex<double>` and
// `RmiIndex<std::string>` share one implementation. The mapping only needs
// to be *approximately* monotonic: correctness comes from the §3.4 error
// bounds computed at build time plus the boundary fix-up, both of which
// are agnostic to how good the feature is.

#ifndef LI_INDEX_KEY_TRAITS_H_
#define LI_INDEX_KEY_TRAITS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>

namespace li::index {

/// Primary template: any arithmetic key is its own feature.
template <typename Key>
struct KeyTraits {
  static_assert(std::is_arithmetic_v<Key>,
                "KeyTraits: specialize for non-arithmetic key types");

  static double ToDouble(Key key) { return static_cast<double>(key); }
  static const char* Name() { return "arithmetic"; }
};

/// Strings: pack the first 8 bytes big-endian, so lexicographic order maps
/// to numeric order up to 8-byte-prefix ties (ties collapse to one feature
/// value; the resulting prediction error is absorbed into the leaf error
/// bounds like any other model error). This is the cheap scalar cousin of
/// the §3.5 tokenized feature vector used by StringRmi's neural top model.
template <>
struct KeyTraits<std::string> {
  static double ToDouble(const std::string& key) {
    uint64_t packed = 0;
    for (size_t i = 0; i < 8; ++i) {
      const uint64_t byte =
          i < key.size() ? static_cast<unsigned char>(key[i]) : 0;
      packed = (packed << 8) | byte;
    }
    return static_cast<double>(packed);
  }
  static const char* Name() { return "string-prefix8"; }
};

}  // namespace li::index

#endif  // LI_INDEX_KEY_TRAITS_H_
