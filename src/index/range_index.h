// The library-wide lookup contract, part 2: the `RangeIndex` concept.
//
// Everything that answers range lookups over a sorted key array — the RMI
// family, the four B-Tree variants, the lookup table — satisfies one
// interface:
//
//   typename I::key_type / I::config_type
//   Build(span<const key_type>, const config_type&) -> Status
//   ApproxPos(key) -> Approx      (model/traversal only, no final search)
//   Lookup(key)    -> size_t      (full lower_bound over the data array)
//   SizeBytes()    -> size_t      (index overhead, excluding the data)
//
// This is what lets the LIF synthesizer (§3.1) enumerate candidates
// uniformly (via AnyRangeIndex), the benches compare backends, and the
// conformance test drive every implementation through the same checks.
//
// `LookupBatch` amortizes per-key overhead on the hot path: indexes with a
// native batched implementation (the RMI core software-pipelines routing,
// prediction and search so cache misses overlap) are dispatched to it;
// everything else falls back to a per-key loop.

#ifndef LI_INDEX_RANGE_INDEX_H_
#define LI_INDEX_RANGE_INDEX_H_

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <span>

#include "common/status.h"
#include "index/approx.h"

namespace li::index {

template <typename I>
concept RangeIndex =
    std::movable<I> &&
    requires(I& mut, const I& idx,
             std::span<const typename I::key_type> keys,
             const typename I::config_type& config,
             const typename I::key_type& key) {
      typename I::key_type;
      typename I::config_type;
      { mut.Build(keys, config) } -> std::same_as<Status>;
      { idx.ApproxPos(key) } -> std::same_as<Approx>;
      { idx.Lookup(key) } -> std::same_as<size_t>;
      { idx.SizeBytes() } -> std::same_as<size_t>;
    };

/// True when the index ships its own batched lookup (e.g. the RMI core).
template <typename I>
concept HasNativeLookupBatch =
    requires(const I& idx, std::span<const typename I::key_type> keys,
             std::span<size_t> out) {
      { idx.LookupBatch(keys, out) };
    };

/// Batched lookup entry point: `out[i] = idx.Lookup(keys[i])` for all i,
/// routed through the index's native batch path when it has one.
/// Mismatched span lengths clamp to the shorter one (the same convention
/// native implementations follow), so no out-of-bounds write is possible.
template <RangeIndex I>
void LookupBatch(const I& idx, std::span<const typename I::key_type> keys,
                 std::span<size_t> out) {
  if constexpr (HasNativeLookupBatch<I>) {
    idx.LookupBatch(keys, out);
  } else {
    const size_t n = std::min(keys.size(), out.size());
    for (size_t i = 0; i < n; ++i) out[i] = idx.Lookup(keys[i]);
  }
}

}  // namespace li::index

#endif  // LI_INDEX_RANGE_INDEX_H_
