// The library-wide lookup contract, part 2: the `RangeIndex` concept.
//
// Everything that answers range lookups over a sorted key array — the RMI
// family, the four B-Tree variants, the lookup table, and (by refinement)
// every writable index — satisfies one interface. This is what lets the
// LIF synthesizer (§3.1) enumerate candidates uniformly (via
// AnyRangeIndex), the benches compare backends, and the conformance suite
// (tests/range_index_conformance_test.cc) drive every implementation
// through the same checks.
//
// Contract requirements — semantics, complexity, thread-safety:
//
//   typename I::key_type
//     The key type. uint64_t, double and std::string are the supported
//     families (index/key_traits.h maps them to model features).
//   typename I::config_type
//     Default-constructible build configuration.
//
//   Build(span<const key_type> keys, const config_type&) -> Status
//     Trains/builds over `keys`, which must be sorted ascending and
//     strictly increasing (no duplicates). Unless documented otherwise
//     (DeltaRangeIndex, ConcurrentWritableIndex copy), the index may keep
//     a span into `keys` — the caller owns the array and must keep it
//     alive and unmoved. Cost: one or two passes over the data plus model
//     training. Not thread-safe; build-then-share.
//
//   ApproxPos(key) -> Approx
//     Model/traversal execution only, no final search: a position
//     estimate plus its worst-case window {pos, lo, hi} (index/approx.h).
//     For any *stored* key the true lower_bound position lies in
//     [lo, hi); for absent keys under a non-monotonic model the window
//     may miss (Lookup recovers with the §3.4 boundary fix-up). Cost:
//     O(model) — constant for the RMI (two model evaluations), O(log n)
//     for trees. Const, safe for concurrent readers.
//
//   Lookup(key) -> size_t
//     Exact lower_bound rank over the data array for *any* probe key:
//     the number of stored keys < `key`. Cost: ApproxPos + a bounded
//     last-mile search over the window (search/search.h). Const, safe
//     for concurrent readers.
//
//   SizeBytes() -> size_t
//     Index overhead in bytes — models, node tables, delta structures —
//     *excluding* the key array itself (the paper's Figure-4 size
//     accounting). O(1). Const, safe for concurrent readers.
//
// Thread-safety baseline for the whole contract: const member functions
// are safe to call from many threads after Build completes; mutating
// members (Build) require external exclusion. Implementations may
// strengthen this (see index/concurrent_writable_index.h) but must not
// weaken it.
//
// `LookupBatch` amortizes per-key overhead on the hot path: indexes with a
// native batched implementation (the RMI core software-pipelines routing,
// prediction and search so cache misses overlap) are dispatched to it;
// everything else falls back to a per-key loop.

#ifndef LI_INDEX_RANGE_INDEX_H_
#define LI_INDEX_RANGE_INDEX_H_

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <span>

#include "common/status.h"
#include "index/approx.h"

namespace li::index {

/// A structure answering lower_bound rank queries over a sorted key
/// array, with an error-bounded position estimate (`ApproxPos`) as the
/// §3.4 common currency. See the header comment for the per-requirement
/// semantics, complexity and thread-safety guarantees.
template <typename I>
concept RangeIndex =
    std::movable<I> &&
    requires(I& mut, const I& idx,
             std::span<const typename I::key_type> keys,
             const typename I::config_type& config,
             const typename I::key_type& key) {
      typename I::key_type;
      typename I::config_type;
      { mut.Build(keys, config) } -> std::same_as<Status>;
      { idx.ApproxPos(key) } -> std::same_as<Approx>;
      { idx.Lookup(key) } -> std::same_as<size_t>;
      { idx.SizeBytes() } -> std::same_as<size_t>;
    };

/// Membership probe through an index over its backing sorted array:
/// true iff `key` is stored. The shared base-membership primitive of the
/// delta wrappers (the rank from Lookup is exact, so one comparison at
/// the returned position decides). O(Lookup). Const-safe.
template <RangeIndex I>
bool ContainsViaLookup(const I& idx,
                       std::span<const typename I::key_type> keys,
                       const typename I::key_type& key) {
  const size_t pos = idx.Lookup(key);
  return pos < keys.size() && keys[pos] == key;
}

/// True when the index ships its own batched lookup (e.g. the RMI core).
template <typename I>
concept HasNativeLookupBatch =
    requires(const I& idx, std::span<const typename I::key_type> keys,
             std::span<size_t> out) {
      { idx.LookupBatch(keys, out) };
    };

/// Batched lookup entry point: `out[i] = idx.Lookup(keys[i])` for all i,
/// routed through the index's native batch path when it has one.
/// Mismatched span lengths clamp to the shorter one (the same convention
/// native implementations follow), so no out-of-bounds write is possible.
template <RangeIndex I>
void LookupBatch(const I& idx, std::span<const typename I::key_type> keys,
                 std::span<size_t> out) {
  if constexpr (HasNativeLookupBatch<I>) {
    idx.LookupBatch(keys, out);
  } else {
    const size_t n = std::min(keys.size(), out.size());
    for (size_t i = 0; i < n; ++i) out[i] = idx.Lookup(keys[i]);
  }
}

}  // namespace li::index

#endif  // LI_INDEX_RANGE_INDEX_H_
