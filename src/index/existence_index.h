// The library-wide lookup contract, part 4: the `ExistenceIndex` concept.
//
// Everything that answers set-membership queries — the standard Bloom
// filter, the learned Bloom filter (classifier + overflow, §5.1.1), the
// model-hash sandwich (§5.1.2 / Appendix E) — satisfies one interface.
//
// Contract requirements — semantics, complexity, thread-safety:
//
//   MightContain(string_view key) -> bool
//     Probabilistic membership: MUST return true for every key inserted
//     at construction (no false negatives, the §5 safety property); may
//     return true for absent keys at the filter's false-positive rate.
//     Cost: k hash probes for a plain Bloom filter; one classifier
//     evaluation (+ overflow-filter probes below the threshold) for the
//     learned variants. Const, safe for concurrent readers.
//
//   SizeBytes() -> size_t
//     Total memory: bitmap bits plus any classifier weights — the §5
//     objective (memory at a fixed FPR), which is why the existence
//     synthesizer picks the *smallest* qualifying candidate rather than
//     the fastest. O(1). Const-safe.
//
//   MeasuredFpr(span<const string> non_keys) -> double
//     The false-positive fraction of MightContain over a non-key test
//     set, delegated to MeasureFprOver below by every implementation so
//     the metric cannot drift. O(|non_keys|) probes. Const-safe.
//
// Thread-safety baseline: const members are safe from many threads after
// construction; filters are immutable once built.
//
// Build is *not* part of the contract: construction recipes differ
// fundamentally (geometry from (n, p*) vs a trained classifier plus
// validation non-keys for threshold calibration), so candidates are
// built concretely and erased into AnyExistenceIndex — the seam the LIF
// synthesizer (§3.1) and the §5 benches enumerate over, mirroring
// AnyRangeIndex / AnyPointIndex.

#ifndef LI_INDEX_EXISTENCE_INDEX_H_
#define LI_INDEX_EXISTENCE_INDEX_H_

#include <concepts>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

namespace li::index {

/// The one definition of "measured FPR": the false-positive fraction of
/// `MightContain` over a non-key test set. Every filter's MeasuredFpr
/// member delegates here so the metric cannot drift between
/// implementations.
template <typename F>
double MeasureFprOver(const F& filter,
                      std::span<const std::string> test_non_keys) {
  if (test_non_keys.empty()) return 0.0;
  size_t fp = 0;
  for (const auto& s : test_non_keys) {
    fp += filter.MightContain(std::string_view(s));
  }
  return static_cast<double>(fp) /
         static_cast<double>(test_non_keys.size());
}

/// A no-false-negative set-membership filter over string keys. See the
/// header comment for the per-requirement semantics, complexity and
/// thread-safety guarantees.
template <typename F>
concept ExistenceIndex =
    std::movable<F> &&
    requires(const F& f, std::string_view key,
             std::span<const std::string> non_keys) {
      { f.MightContain(key) } -> std::same_as<bool>;
      { f.SizeBytes() } -> std::same_as<size_t>;
      { f.MeasuredFpr(non_keys) } -> std::same_as<double>;
    };

/// Type-erased ExistenceIndex. An empty handle behaves like a filter over
/// the empty set: MightContain is always false, FPR is 0.
class AnyExistenceIndex {
 public:
  AnyExistenceIndex() = default;

  template <typename F>
    requires ExistenceIndex<std::remove_cvref_t<F>> &&
             (!std::same_as<std::remove_cvref_t<F>, AnyExistenceIndex>)
  explicit AnyExistenceIndex(F&& impl)
      : impl_(std::make_unique<Holder<std::remove_cvref_t<F>>>(
            std::forward<F>(impl))) {}

  AnyExistenceIndex(AnyExistenceIndex&&) noexcept = default;
  AnyExistenceIndex& operator=(AnyExistenceIndex&&) noexcept = default;

  bool empty() const { return impl_ == nullptr; }

  bool MightContain(std::string_view key) const {
    return impl_ != nullptr && impl_->MightContain(key);
  }
  size_t SizeBytes() const { return impl_ ? impl_->SizeBytes() : 0; }
  double MeasuredFpr(std::span<const std::string> non_keys) const {
    return impl_ ? impl_->MeasuredFpr(non_keys) : 0.0;
  }

 private:
  struct Iface {
    virtual ~Iface() = default;
    virtual bool MightContain(std::string_view key) const = 0;
    virtual size_t SizeBytes() const = 0;
    virtual double MeasuredFpr(
        std::span<const std::string> non_keys) const = 0;
  };

  template <typename F>
  struct Holder final : Iface {
    template <typename U>
    explicit Holder(U&& v) : impl(std::forward<U>(v)) {}

    bool MightContain(std::string_view key) const override {
      return impl.MightContain(key);
    }
    size_t SizeBytes() const override { return impl.SizeBytes(); }
    double MeasuredFpr(std::span<const std::string> non_keys) const override {
      return impl.MeasuredFpr(non_keys);
    }

    F impl;
  };

  std::unique_ptr<const Iface> impl_;
};

}  // namespace li::index

#endif  // LI_INDEX_EXISTENCE_INDEX_H_
