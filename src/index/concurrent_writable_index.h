// The library-wide lookup contract, part 5: concurrent writable range
// indexes.
//
// A `ConcurrentWritableRangeIndex` is a `WritableRangeIndex` whose
// operations are safe to call from many threads at once, with the
// read/write separation the paper's serving scenario implies: lookups
// never block on writes or merges, writes never block on reads, and the
// merge+retrain cycle runs on a background worker that publishes the new
// base with an atomic swap (epoch-based reclamation drains the old one).
//
// Thread-safety guarantees every implementation must provide:
//   * Lookup / LookupBatch / ApproxPos / Contains / Scan / size /
//     SizeBytes / Stats / ConcurrentStats: callable concurrently from any
//     number of threads, lock-free on the read path (no mutex, no wait on
//     an in-flight merge or write).
//   * Insert / Erase: callable concurrently from any number of threads;
//     writers may serialize against each other but never against readers.
//   * Merge(): synchronous — requests a merge cycle and blocks the caller
//     until the background worker has folded everything written *before*
//     the call; readers stay lock-free throughout.
//   * RequestMerge(): asynchronous trigger — never blocks; coalesces with
//     an already-pending request.
//   * WaitForMerges(): blocks until no merge is pending or running (the
//     quiesce point tests and snapshot readers use).
//
// Linearizability contract: every op observes some prefix of the write
// history (the write-log publication point is the serialization point).
// When no write is in flight — single-threaded use, or any externally
// quiesced moment — reads are exact: Lookup is lower_bound over the live
// set, size() the exact live count, Scan the sorted live keys. Under
// in-flight writes, reads reflect an instant at most one write behind.
//
// The canonical implementations are concurrent::ConcurrentWritableIndex
// (one writer lock + append-only write log + epoch-swapped base) and
// concurrent::ShardedIndex (range partitioning over N inner indexes for
// write scaling); the concept is implementation-agnostic so the LIF
// synthesizer and the conformance suite enumerate them like any other
// candidate.

#ifndef LI_INDEX_CONCURRENT_WRITABLE_INDEX_H_
#define LI_INDEX_CONCURRENT_WRITABLE_INDEX_H_

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "index/approx.h"
#include "index/writable_range_index.h"

namespace li::index {

/// Concurrency observability on top of the per-op WritableIndexStats:
/// contention counters (who waited on whom), state-version lifecycle
/// (publish / retire / reclaim), and the background-merge split. These are
/// the gauges the sharding and merge-policy knobs are tuned against.
struct ConcurrentIndexStats : WritableIndexStats {
  uint64_t freezes = 0;            // write-log -> frozen-delta folds
  uint64_t background_merges = 0;  // merge cycles run by the worker
  uint64_t writer_contended = 0;   // write-lock acquisitions that waited
  uint64_t states_published = 0;   // versions swapped in (freezes + merges)
  uint64_t states_retired = 0;     // versions handed to the epoch manager
  uint64_t states_reclaimed = 0;   // versions actually freed so far
  uint64_t epoch_fallback_pins = 0;  // readers beyond the slot table
  size_t log_entries = 0;          // unsorted write-log entries (subset of
                                   // delta_entries)
  size_t shards = 1;               // 1 unless range-sharded
  uint64_t shard_splits = 0;       // online shard splits performed
  uint64_t shard_coalesces = 0;    // online shard coalesces performed
  uint64_t shard_maps_published = 0;  // routing-table (ShardMap) versions
                                      // published, the build map included
  double shard_imbalance = 1.0;    // max/mean live shard mass right now —
                                   // the gauge the rebalancer bounds

  /// Fraction of writes that found the writer lock held — the signal that
  /// a single write front-end is saturated and sharding would pay off.
  double WriterContentionRate() const {
    const uint64_t writes = inserts + erases;
    return writes == 0 ? 0.0
                       : static_cast<double>(writer_contended) /
                             static_cast<double>(writes);
  }
};

/// A WritableRangeIndex that is safe under concurrent readers and
/// writers (see the header comment for the exact guarantees), with an
/// asynchronous merge trigger, a quiesce point, and contention-aware
/// stats. `Merge()` keeps its synchronous WritableRangeIndex semantics —
/// it blocks the *caller*, never the readers.
template <typename I>
concept ConcurrentWritableRangeIndex =
    WritableRangeIndex<I> &&
    requires(I& mut, const I& idx) {
      { idx.ConcurrentStats() } -> std::same_as<ConcurrentIndexStats>;
      { mut.RequestMerge() } -> std::same_as<void>;
      { mut.WaitForMerges() } -> std::same_as<void>;
    };

/// Type-erased ConcurrentWritableRangeIndex, mirroring
/// AnyWritableRangeIndexOf but keeping the concurrent surface
/// (RequestMerge / WaitForMerges / ConcurrentStats) callable through the
/// erasure — for holders of heterogeneous concurrent indexes (single
/// front-end vs sharded, different bases) that still need to quiesce
/// workers or read contention gauges. Note the LIF writable synthesizer
/// erases its winners into AnyWritableRangeIndexOf (the class-wide
/// contract that single-threaded candidates also satisfy); use this type
/// when constructing concurrent indexes directly. Build is not erased
/// (config types differ); candidates are built concretely and moved in.
/// The handle itself is as thread-safe as the wrapped index; moving the
/// handle while ops are in flight is undefined, as for any container.
template <typename Key>
class AnyConcurrentWritableIndexOf {
 public:
  using key_type = Key;

  AnyConcurrentWritableIndexOf() = default;

  template <typename I>
    requires ConcurrentWritableRangeIndex<std::remove_cvref_t<I>> &&
             std::same_as<typename std::remove_cvref_t<I>::key_type, Key> &&
             (!std::same_as<std::remove_cvref_t<I>,
                            AnyConcurrentWritableIndexOf>)
  explicit AnyConcurrentWritableIndexOf(I&& impl)
      : impl_(std::make_unique<Holder<std::remove_cvref_t<I>>>(
            std::forward<I>(impl))) {}

  AnyConcurrentWritableIndexOf(AnyConcurrentWritableIndexOf&&) noexcept =
      default;
  AnyConcurrentWritableIndexOf& operator=(
      AnyConcurrentWritableIndexOf&&) noexcept = default;

  /// True when no index has been wrapped yet; reads then answer like an
  /// empty index and writes are dropped (returning false).
  bool empty() const { return impl_ == nullptr; }

  bool Insert(const Key& key) { return impl_ ? impl_->Insert(key) : false; }
  bool Erase(const Key& key) { return impl_ ? impl_->Erase(key) : false; }
  bool Contains(const Key& key) const {
    return impl_ ? impl_->Contains(key) : false;
  }
  size_t Lookup(const Key& key) const {
    return impl_ ? impl_->Lookup(key) : 0;
  }
  size_t LowerBound(const Key& key) const { return Lookup(key); }
  Approx ApproxPos(const Key& key) const {
    return impl_ ? impl_->ApproxPos(key) : Approx{};
  }
  void LookupBatch(std::span<const Key> keys, std::span<size_t> out) const {
    if (impl_ != nullptr) {
      impl_->LookupBatch(keys, out);
    } else {
      for (size_t i = 0; i < out.size(); ++i) out[i] = 0;
    }
  }
  std::vector<Key> Scan(const Key& from, size_t limit) const {
    return impl_ ? impl_->Scan(from, limit) : std::vector<Key>{};
  }
  Status Merge() {
    return impl_ ? impl_->Merge()
                 : Status::FailedPrecondition(
                       "AnyConcurrentWritableIndex: empty");
  }
  void RequestMerge() {
    if (impl_ != nullptr) impl_->RequestMerge();
  }
  void WaitForMerges() {
    if (impl_ != nullptr) impl_->WaitForMerges();
  }
  size_t size() const { return impl_ ? impl_->size() : 0; }
  size_t SizeBytes() const { return impl_ ? impl_->SizeBytes() : 0; }
  WritableIndexStats Stats() const {
    return impl_ ? impl_->Stats() : WritableIndexStats{};
  }
  ConcurrentIndexStats ConcurrentStats() const {
    return impl_ ? impl_->ConcurrentStats() : ConcurrentIndexStats{};
  }

 private:
  struct Iface {
    virtual ~Iface() = default;
    virtual bool Insert(const Key& key) = 0;
    virtual bool Erase(const Key& key) = 0;
    virtual bool Contains(const Key& key) const = 0;
    virtual size_t Lookup(const Key& key) const = 0;
    virtual Approx ApproxPos(const Key& key) const = 0;
    virtual void LookupBatch(std::span<const Key> keys,
                             std::span<size_t> out) const = 0;
    virtual std::vector<Key> Scan(const Key& from, size_t limit) const = 0;
    virtual Status Merge() = 0;
    virtual void RequestMerge() = 0;
    virtual void WaitForMerges() = 0;
    virtual size_t size() const = 0;
    virtual size_t SizeBytes() const = 0;
    virtual WritableIndexStats Stats() const = 0;
    virtual ConcurrentIndexStats ConcurrentStats() const = 0;
  };

  template <typename I>
  struct Holder final : Iface {
    template <typename U>
    explicit Holder(U&& v) : impl(std::forward<U>(v)) {}

    bool Insert(const Key& key) override { return impl.Insert(key); }
    bool Erase(const Key& key) override { return impl.Erase(key); }
    bool Contains(const Key& key) const override {
      return impl.Contains(key);
    }
    size_t Lookup(const Key& key) const override { return impl.Lookup(key); }
    Approx ApproxPos(const Key& key) const override {
      return impl.ApproxPos(key);
    }
    void LookupBatch(std::span<const Key> keys,
                     std::span<size_t> out) const override {
      index::LookupBatch(impl, keys, out);
    }
    std::vector<Key> Scan(const Key& from, size_t limit) const override {
      return impl.Scan(from, limit);
    }
    Status Merge() override { return impl.Merge(); }
    void RequestMerge() override { impl.RequestMerge(); }
    void WaitForMerges() override { impl.WaitForMerges(); }
    size_t size() const override { return impl.size(); }
    size_t SizeBytes() const override { return impl.SizeBytes(); }
    WritableIndexStats Stats() const override { return impl.Stats(); }
    ConcurrentIndexStats ConcurrentStats() const override {
      return impl.ConcurrentStats();
    }

    I impl;
  };

  std::unique_ptr<Iface> impl_;
};

/// The common case: integer-keyed concurrent writable indexes.
using AnyConcurrentWritableIndex = AnyConcurrentWritableIndexOf<uint64_t>;

}  // namespace li::index

#endif  // LI_INDEX_CONCURRENT_WRITABLE_INDEX_H_
