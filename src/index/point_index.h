// The library-wide lookup contract, part 3: the `PointIndex` concept.
//
// Everything that answers single-key lookups over a record set — the
// separate-chaining map, the in-place chained map, the bucketized cuckoo
// map — satisfies one interface, mirroring the RangeIndex contract that
// PR 1 put under the range layer.
//
// Contract requirements — semantics, complexity, thread-safety:
//
//   typename I::config_type
//     Default-constructible build configuration. The hash-function
//     family (MurmurHash-style random vs learned CDF, §4.1) is part of
//     it (hash::HashConfig), not a template parameter callers thread.
//
//   Build(span<const hash::Record> records, const config_type&) -> Status
//     Builds over `records` in any order; duplicate keys keep the FIRST
//     record seen. Records are copied into the map's own storage. Cost:
//     O(n) inserts plus (for the learned family) CDF-model training.
//     Not thread-safe; build-then-share.
//
//   Find(key) -> const hash::Record*
//     The stored record, or nullptr when absent — including on an empty
//     or never-built map (no UB, regression-tested). The pointer is
//     valid until the map is mutated or destroyed. Cost: one hash (or
//     model) evaluation + expected O(1 + load) probes; Stats().
//     mean_probe reports the measured chain length. Const, safe for
//     concurrent readers.
//
//   SizeBytes() -> size_t
//     Total memory: primary slots + overflow storage, *including* the
//     records (the Appendix-B accounting — unlike range indexes, the
//     record payload is part of the structure). O(1). Const-safe.
//
//   num_records() -> size_t
//     Stored record count (first-wins deduplicated). O(1). Const-safe.
//
//   Stats() -> PointIndexStats
//     Conflict/occupancy metrics (slots, empties, overflow, mean probe)
//     — the Figure-8/-11 columns. O(1) (precomputed at Build).
//     Const-safe.
//
// Thread-safety baseline: const members are safe from many threads after
// Build. The concurrent write path lives one contract over:
// index::ConcurrentWritablePointIndex (concurrent_point_index.h) wraps
// these same map families behind epoch-pinned copy-out reads.
//
// This is what lets the LIF synthesizer (§3.1) enumerate point-index
// candidates uniformly (via AnyPointIndex), the §4 benches compare map
// families, and the conformance suite drive every implementation through
// identical checks.
//
// `FindBatch` amortizes per-key overhead on the hot path: maps with a
// native batched implementation (block-wise hash -> prefetch -> probe, so
// neighboring cache misses overlap) are dispatched to it; everything else
// falls back to a per-key loop.

#ifndef LI_INDEX_POINT_INDEX_H_
#define LI_INDEX_POINT_INDEX_H_

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>

#include "common/status.h"
#include "hash/record.h"

namespace li::index {

/// Conflict / occupancy statistics shared by every point index — the
/// Figure-8 ("% Conflicts") and Figure-11 ("Empty Slots") metrics plus the
/// cache-miss proxy of Appendix C.
struct PointIndexStats {
  size_t num_slots = 0;      // primary slots (excl. overflow storage)
  size_t empty_slots = 0;    // primary slots never filled (wasted space)
  size_t overflow = 0;       // entries stored beyond their home slot
  double mean_probe = 0.0;   // mean probe-chain length over stored records

  double utilization() const {
    return num_slots == 0
               ? 0.0
               : static_cast<double>(num_slots - empty_slots) /
                     static_cast<double>(num_slots);
  }
};

/// A hashed single-key lookup structure over hash::Record. See the
/// header comment for the per-requirement semantics, complexity and
/// thread-safety guarantees.
template <typename I>
concept PointIndex =
    std::movable<I> &&
    requires(I& mut, const I& idx, std::span<const hash::Record> records,
             const typename I::config_type& config, uint64_t key) {
      typename I::config_type;
      { mut.Build(records, config) } -> std::same_as<Status>;
      { idx.Find(key) } -> std::same_as<const hash::Record*>;
      { idx.SizeBytes() } -> std::same_as<size_t>;
      { idx.num_records() } -> std::same_as<size_t>;
      { idx.Stats() } -> std::same_as<PointIndexStats>;
    };

/// True when the map ships its own batched probe (hash -> prefetch ->
/// probe over blocks, mirroring the RMI LookupBatch pipeline).
template <typename I>
concept HasNativeFindBatch =
    requires(const I& idx, std::span<const uint64_t> keys,
             std::span<const hash::Record*> out) {
      { idx.FindBatch(keys, out) };
    };

/// Batched probe entry point: `out[i] = idx.Find(keys[i])` for all i,
/// routed through the map's native batch path when it has one. Mismatched
/// span lengths clamp to the shorter one.
template <PointIndex I>
void FindBatch(const I& idx, std::span<const uint64_t> keys,
               std::span<const hash::Record*> out) {
  if constexpr (HasNativeFindBatch<I>) {
    idx.FindBatch(keys, out);
  } else {
    const size_t n = std::min(keys.size(), out.size());
    for (size_t i = 0; i < n; ++i) out[i] = idx.Find(keys[i]);
  }
}

/// Type-erased PointIndex — the runtime face of the contract. Build() is
/// *not* erased (config types differ per map family); candidates are
/// built concretely and then moved in, exactly like AnyRangeIndexOf.
class AnyPointIndex {
 public:
  AnyPointIndex() = default;

  template <typename I>
    requires PointIndex<std::remove_cvref_t<I>> &&
             (!std::same_as<std::remove_cvref_t<I>, AnyPointIndex>)
  explicit AnyPointIndex(I&& impl)
      : impl_(std::make_unique<Holder<std::remove_cvref_t<I>>>(
            std::forward<I>(impl))) {}

  AnyPointIndex(AnyPointIndex&&) noexcept = default;
  AnyPointIndex& operator=(AnyPointIndex&&) noexcept = default;

  /// True when no map has been wrapped yet; Find then answers nullptr like
  /// a never-built map.
  bool empty() const { return impl_ == nullptr; }

  const hash::Record* Find(uint64_t key) const {
    return impl_ ? impl_->Find(key) : nullptr;
  }
  void FindBatch(std::span<const uint64_t> keys,
                 std::span<const hash::Record*> out) const {
    if (impl_ != nullptr) {
      impl_->FindBatch(keys, out);
    } else {
      // Same clamp-to-shorter convention as every built map.
      const size_t n = std::min(keys.size(), out.size());
      for (size_t i = 0; i < n; ++i) out[i] = nullptr;
    }
  }
  size_t SizeBytes() const { return impl_ ? impl_->SizeBytes() : 0; }
  size_t num_records() const { return impl_ ? impl_->num_records() : 0; }
  PointIndexStats Stats() const {
    return impl_ ? impl_->Stats() : PointIndexStats{};
  }

 private:
  struct Iface {
    virtual ~Iface() = default;
    virtual const hash::Record* Find(uint64_t key) const = 0;
    virtual void FindBatch(std::span<const uint64_t> keys,
                           std::span<const hash::Record*> out) const = 0;
    virtual size_t SizeBytes() const = 0;
    virtual size_t num_records() const = 0;
    virtual PointIndexStats Stats() const = 0;
  };

  template <typename I>
  struct Holder final : Iface {
    template <typename U>
    explicit Holder(U&& v) : impl(std::forward<U>(v)) {}

    const hash::Record* Find(uint64_t key) const override {
      return impl.Find(key);
    }
    void FindBatch(std::span<const uint64_t> keys,
                   std::span<const hash::Record*> out) const override {
      index::FindBatch(impl, keys, out);
    }
    size_t SizeBytes() const override { return impl.SizeBytes(); }
    size_t num_records() const override { return impl.num_records(); }
    PointIndexStats Stats() const override { return impl.Stats(); }

    I impl;
  };

  std::unique_ptr<const Iface> impl_;
};

}  // namespace li::index

#endif  // LI_INDEX_POINT_INDEX_H_
