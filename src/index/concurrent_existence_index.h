// The library-wide lookup contract, part 7: concurrent insertable
// existence indexes.
//
// A `ConcurrentExistenceIndex` is an ExistenceIndex (part 4) that accepts
// inserts after construction while readers keep probing lock-free: new
// keys land in a side set that is immediately visible to MightContain,
// and a background worker folds the side set into a freshly rebuilt
// filter at a staleness threshold, hot-swapping it through the same epoch
// publish protocol the concurrent range and point classes use.
//
// Thread-safety guarantees every implementation must provide:
//   * MightContain / num_keys / SizeBytes / MeasuredFpr /
//     ConcurrentStats: callable concurrently from any number of threads,
//     lock-free on the read path.
//   * Insert: callable concurrently from any number of threads; writers
//     may serialize against each other but never against readers.
//   * RequestRebuild(): asynchronous fold trigger — never blocks;
//     coalesces with an already-pending request.
//   * WaitForRebuilds(): blocks until no rebuild is pending or running.
//
// Safety property under concurrency: the §5 no-false-negative guarantee
// extends to inserted keys — once Insert(k) returns, every subsequent
// MightContain(k) returns true, on any thread, through any number of
// background rebuilds. Insert returns true iff the key was not already
// an exact member (filter corpus or side set); the side set is exact, so
// num_keys() counts distinct inserted keys, not filter positives.

#ifndef LI_INDEX_CONCURRENT_EXISTENCE_INDEX_H_
#define LI_INDEX_CONCURRENT_EXISTENCE_INDEX_H_

#include <concepts>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

#include "index/concurrent_writable_index.h"
#include "index/existence_index.h"

namespace li::index {

/// An ExistenceIndex safe under concurrent readers and inserters (see
/// the header comment for the exact guarantees), with a staleness-driven
/// background rebuild and the shared concurrency gauges.
template <typename F>
concept ConcurrentExistenceIndex =
    ExistenceIndex<F> &&
    requires(F& mut, const F& idx, std::string_view key) {
      { mut.Insert(key) } -> std::same_as<bool>;
      { idx.num_keys() } -> std::same_as<size_t>;
      { idx.ConcurrentStats() } -> std::same_as<ConcurrentIndexStats>;
      { mut.RequestRebuild() } -> std::same_as<void>;
      { mut.WaitForRebuilds() } -> std::same_as<void>;
    };

/// Type-erased ConcurrentExistenceIndex. An empty handle behaves like a
/// filter over the empty set that drops writes: MightContain is always
/// false, Insert returns false. Itself satisfies ExistenceIndex (like
/// AnyExistenceIndex), so an erased concurrent filter can stand anywhere
/// a static filter can.
class AnyConcurrentExistenceIndex {
 public:
  AnyConcurrentExistenceIndex() = default;

  template <typename F>
    requires ConcurrentExistenceIndex<std::remove_cvref_t<F>> &&
             (!std::same_as<std::remove_cvref_t<F>,
                            AnyConcurrentExistenceIndex>)
  explicit AnyConcurrentExistenceIndex(F&& impl)
      : impl_(std::make_unique<Holder<std::remove_cvref_t<F>>>(
            std::forward<F>(impl))) {}

  AnyConcurrentExistenceIndex(AnyConcurrentExistenceIndex&&) noexcept =
      default;
  AnyConcurrentExistenceIndex& operator=(
      AnyConcurrentExistenceIndex&&) noexcept = default;

  bool empty() const { return impl_ == nullptr; }

  bool MightContain(std::string_view key) const {
    return impl_ != nullptr && impl_->MightContain(key);
  }
  bool Insert(std::string_view key) {
    return impl_ != nullptr && impl_->Insert(key);
  }
  void RequestRebuild() {
    if (impl_ != nullptr) impl_->RequestRebuild();
  }
  void WaitForRebuilds() {
    if (impl_ != nullptr) impl_->WaitForRebuilds();
  }
  size_t num_keys() const { return impl_ ? impl_->num_keys() : 0; }
  size_t SizeBytes() const { return impl_ ? impl_->SizeBytes() : 0; }
  double MeasuredFpr(std::span<const std::string> non_keys) const {
    return impl_ ? impl_->MeasuredFpr(non_keys) : 0.0;
  }
  ConcurrentIndexStats ConcurrentStats() const {
    return impl_ ? impl_->ConcurrentStats() : ConcurrentIndexStats{};
  }

 private:
  struct Iface {
    virtual ~Iface() = default;
    virtual bool MightContain(std::string_view key) const = 0;
    virtual bool Insert(std::string_view key) = 0;
    virtual void RequestRebuild() = 0;
    virtual void WaitForRebuilds() = 0;
    virtual size_t num_keys() const = 0;
    virtual size_t SizeBytes() const = 0;
    virtual double MeasuredFpr(
        std::span<const std::string> non_keys) const = 0;
    virtual ConcurrentIndexStats ConcurrentStats() const = 0;
  };

  template <typename F>
  struct Holder final : Iface {
    template <typename U>
    explicit Holder(U&& v) : impl(std::forward<U>(v)) {}

    bool MightContain(std::string_view key) const override {
      return impl.MightContain(key);
    }
    bool Insert(std::string_view key) override { return impl.Insert(key); }
    void RequestRebuild() override { impl.RequestRebuild(); }
    void WaitForRebuilds() override { impl.WaitForRebuilds(); }
    size_t num_keys() const override { return impl.num_keys(); }
    size_t SizeBytes() const override { return impl.SizeBytes(); }
    double MeasuredFpr(std::span<const std::string> non_keys) const override {
      return impl.MeasuredFpr(non_keys);
    }
    ConcurrentIndexStats ConcurrentStats() const override {
      return impl.ConcurrentStats();
    }

    F impl;
  };

  std::unique_ptr<Iface> impl_;
};

}  // namespace li::index

#endif  // LI_INDEX_CONCURRENT_EXISTENCE_INDEX_H_
