// Durability contract for writable index classes, layered on top of the
// snapshot contract (snapshottable.h): a DurableIndex can attach a
// write-ahead log so every acknowledged Insert/Erase survives a crash,
// and can reconstruct itself from snapshot + log replay.
//
// Lifecycle (docs/DURABILITY.md has the full state machine):
//
//   Build(...)                 — in-memory, not durable
//   EnableDurability(cfg)      — fresh log; subsequent writes are
//                                log-then-apply (append acknowledged
//                                before the in-memory mutation is
//                                visible to the caller)
//   WriteSnapshot(path)        — publishes the covered LSN inside the
//                                snapshot and truncates the log behind it
//   OpenSnapshot(path) +
//   RecoverFromWal(cfg)        — replay records past the snapshot's
//                                covered LSN, then resume logging
//
// The concept is satisfied by DeltaRangeIndex and
// ConcurrentWritableIndex; ShardedIndex routes per-shard logs through
// the same machinery behind a directory-based variant (EnableDurability
// on a directory, RecoverDurable instead of OpenSnapshot).

#ifndef LI_INDEX_DURABLE_INDEX_H_
#define LI_INDEX_DURABLE_INDEX_H_

#include <concepts>

#include "common/status.h"
#include "wal/wal.h"

namespace li::index {

template <typename I>
concept DurableIndex = requires(I& idx, const I& cidx,
                                const wal::DurabilityConfig& cfg) {
  { idx.EnableDurability(cfg) } -> std::same_as<Status>;
  { idx.RecoverFromWal(cfg) } -> std::same_as<Status>;
  { cidx.durable() } -> std::convertible_to<bool>;
  { cidx.wal_status() } -> std::convertible_to<Status>;
  { cidx.DurabilityStats() } -> std::convertible_to<wal::WalStats>;
};

}  // namespace li::index

#endif  // LI_INDEX_DURABLE_INDEX_H_
