// The library-wide lookup contract, part 5: the `RangeFilter` concept.
//
// Everything that answers range-emptiness queries — "might any key lie in
// [lo, hi)?" — satisfies one interface. This extends the ExistenceIndex
// family (§5) from point membership to ranges: the workload that gates
// LSM run probes and analytics block skipping, where a confident "empty"
// lets the engine skip an I/O. Point membership stays available as the
// degenerate one-key range: MightContain(k) == MightContainRange(k, k+1).
//
// Contract requirements — semantics, complexity, thread-safety:
//
//   MightContainRange(uint64_t lo, uint64_t hi) -> bool
//     Probabilistic range emptiness over the half-open interval [lo, hi).
//     MUST return true whenever any built key k satisfies lo <= k < hi
//     (zero false negatives — the §5 safety property lifted to ranges);
//     may return true for an empty interval at the filter's range-FPR.
//     A degenerate interval (hi <= lo) is empty by definition and MUST
//     return false. Cost: O(segments overlapped + bitmap words scanned);
//     for the filters in src/rangefilter/ the query touches at most two
//     boundary segments. Const, safe for concurrent readers.
//
//   MightContain(uint64_t key) -> bool
//     The degenerate point probe, exactly MightContainRange(key, key + 1)
//     (with the key == 2^64-1 edge handled internally, not by wrapping).
//     Const-safe.
//
//   SizeBytes() -> size_t
//     Total memory: bitmap bits plus segment/model metadata — the §5
//     objective (memory at a fixed FPR) is why the range synthesizer
//     picks the *smallest* qualifying candidate. O(1). Const-safe.
//
//   MeasuredRangeFpr(span<const RangeQuery> empty_queries) -> double
//     The false-positive fraction of MightContainRange over query ranges
//     known to contain no built key, delegated to MeasureRangeFprOver
//     below by every implementation so the metric cannot drift.
//     O(|empty_queries|) probes. Const-safe.
//
// Thread-safety baseline: const members are safe from many threads after
// construction; filters are immutable once built.
//
// Build is *not* part of the contract: construction recipes differ (a
// per-segment CDF model grid vs a fixed-width block grid), so candidates
// are built concretely and erased into AnyRangeFilter — the seam the LIF
// range sweep (lif::SynthesizedExistenceIndex::SynthesizeRange) and
// bench_rangefilter enumerate over, mirroring AnyExistenceIndex.

#ifndef LI_INDEX_RANGE_FILTER_H_
#define LI_INDEX_RANGE_FILTER_H_

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>

namespace li::index {

/// One half-open range-emptiness query [lo, hi).
struct RangeQuery {
  uint64_t lo = 0;
  uint64_t hi = 0;
};

/// The one definition of "measured range FPR": the false-positive
/// fraction of MightContainRange over ranges known to be empty of built
/// keys. Every filter's MeasuredRangeFpr member delegates here so the
/// metric cannot drift between implementations.
template <typename F>
double MeasureRangeFprOver(const F& filter,
                           std::span<const RangeQuery> empty_queries) {
  if (empty_queries.empty()) return 0.0;
  size_t fp = 0;
  for (const RangeQuery& q : empty_queries) {
    fp += filter.MightContainRange(q.lo, q.hi);
  }
  return static_cast<double>(fp) /
         static_cast<double>(empty_queries.size());
}

/// A no-false-negative range-emptiness filter over uint64 keys. See the
/// header comment for the per-requirement semantics, complexity and
/// thread-safety guarantees.
template <typename F>
concept RangeFilter =
    std::movable<F> &&
    requires(const F& f, uint64_t lo, uint64_t hi,
             std::span<const RangeQuery> empty_queries) {
      { f.MightContainRange(lo, hi) } -> std::same_as<bool>;
      { f.MightContain(lo) } -> std::same_as<bool>;
      { f.SizeBytes() } -> std::same_as<size_t>;
      { f.MeasuredRangeFpr(empty_queries) } -> std::same_as<double>;
    };

/// Type-erased RangeFilter. An empty handle behaves like a filter over
/// the empty key set: every query answers false, FPR is 0.
class AnyRangeFilter {
 public:
  AnyRangeFilter() = default;

  template <typename F>
    requires RangeFilter<std::remove_cvref_t<F>> &&
             (!std::same_as<std::remove_cvref_t<F>, AnyRangeFilter>)
  explicit AnyRangeFilter(F&& impl)
      : impl_(std::make_unique<Holder<std::remove_cvref_t<F>>>(
            std::forward<F>(impl))) {}

  AnyRangeFilter(AnyRangeFilter&&) noexcept = default;
  AnyRangeFilter& operator=(AnyRangeFilter&&) noexcept = default;

  bool empty() const { return impl_ == nullptr; }

  bool MightContainRange(uint64_t lo, uint64_t hi) const {
    return impl_ != nullptr && impl_->MightContainRange(lo, hi);
  }
  bool MightContain(uint64_t key) const {
    return impl_ != nullptr && impl_->MightContain(key);
  }
  size_t SizeBytes() const { return impl_ ? impl_->SizeBytes() : 0; }
  double MeasuredRangeFpr(std::span<const RangeQuery> empty_queries) const {
    return impl_ ? impl_->MeasuredRangeFpr(empty_queries) : 0.0;
  }

 private:
  struct Iface {
    virtual ~Iface() = default;
    virtual bool MightContainRange(uint64_t lo, uint64_t hi) const = 0;
    virtual bool MightContain(uint64_t key) const = 0;
    virtual size_t SizeBytes() const = 0;
    virtual double MeasuredRangeFpr(
        std::span<const RangeQuery> empty_queries) const = 0;
  };

  template <typename F>
  struct Holder final : Iface {
    template <typename U>
    explicit Holder(U&& v) : impl(std::forward<U>(v)) {}

    bool MightContainRange(uint64_t lo, uint64_t hi) const override {
      return impl.MightContainRange(lo, hi);
    }
    bool MightContain(uint64_t key) const override {
      return impl.MightContain(key);
    }
    size_t SizeBytes() const override { return impl.SizeBytes(); }
    double MeasuredRangeFpr(
        std::span<const RangeQuery> empty_queries) const override {
      return impl.MeasuredRangeFpr(empty_queries);
    }

    F impl;
  };

  std::unique_ptr<const Iface> impl_;
};

}  // namespace li::index

#endif  // LI_INDEX_RANGE_FILTER_H_
