// The library-wide lookup contract, part 6: concurrent writable point
// indexes.
//
// A `ConcurrentWritablePointIndex` is the point-class analogue of
// ConcurrentWritableRangeIndex (part 5): a hashed single-key structure
// whose reads are epoch-pinned and lock-free, whose writers serialize on
// one mutex, and whose resize/rehash runs on a background worker that
// builds the replacement table off to the side, publishes it with an
// atomic swap, and retires the old one to the epoch manager.
//
// The read surface deliberately differs from the static PointIndex in one
// way: `Find` copies the record out instead of returning a pointer.
// A `const hash::Record*` into a published version is only valid while
// that version is pinned; handing it across the call boundary would dangle
// as soon as a background rebuild retires the version. Value-semantics
// reads keep the contract race-free by construction.
//
// Thread-safety guarantees every implementation must provide:
//   * Find / FindBatch / num_records / SizeBytes / Stats /
//     ConcurrentStats: callable concurrently from any number of threads,
//     lock-free on the read path (no mutex, no wait on an in-flight write
//     or rebuild).
//   * Insert / Upsert / Erase: callable concurrently from any number of
//     threads; writers may serialize against each other but never against
//     readers.
//   * RequestRebuild(): asynchronous rehash/resize trigger — never
//     blocks; coalesces with an already-pending request.
//   * WaitForRebuilds(): blocks until no rebuild is pending or running
//     (the quiesce point tests and benches use).
//
// Write semantics (first-wins Build + last-write-wins mutation):
//   Insert(rec)  -> true iff rec.key was absent; an existing record is
//                   NOT overwritten (matching Build's first-wins dedup).
//   Upsert(rec)  -> stores rec unconditionally; true iff the key was
//                   absent (i.e. the live count grew).
//   Erase(key)   -> true iff the key was present.
//
// Linearizability contract: identical to the range side — every op
// observes some prefix of the write history (the write-log publication
// point is the serialization point). At any externally quiesced moment
// reads are exact: Find returns the newest stored record per key,
// num_records() the exact live count.

#ifndef LI_INDEX_CONCURRENT_POINT_INDEX_H_
#define LI_INDEX_CONCURRENT_POINT_INDEX_H_

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>

#include "common/status.h"
#include "hash/record.h"
#include "index/concurrent_writable_index.h"
#include "index/point_index.h"

namespace li::index {

/// A point index safe under concurrent readers and writers (see the
/// header comment for the exact guarantees), with copy-out reads, an
/// asynchronous rehash trigger, a quiesce point, and the same
/// contention/lifecycle gauges as the concurrent range class.
template <typename I>
concept ConcurrentWritablePointIndex =
    std::movable<I> &&
    requires(I& mut, const I& idx, std::span<const hash::Record> records,
             const typename I::config_type& config, uint64_t key,
             const hash::Record& rec, hash::Record* out,
             std::span<const uint64_t> keys, std::span<hash::Record> recs,
             std::span<uint8_t> found) {
      typename I::config_type;
      { mut.Build(records, config) } -> std::same_as<Status>;
      { idx.Find(key, out) } -> std::same_as<bool>;
      { idx.FindBatch(keys, recs, found) } -> std::same_as<void>;
      { mut.Insert(rec) } -> std::same_as<bool>;
      { mut.Upsert(rec) } -> std::same_as<bool>;
      { mut.Erase(key) } -> std::same_as<bool>;
      { idx.num_records() } -> std::same_as<size_t>;
      { idx.SizeBytes() } -> std::same_as<size_t>;
      { idx.Stats() } -> std::same_as<PointIndexStats>;
      { idx.ConcurrentStats() } -> std::same_as<ConcurrentIndexStats>;
      { mut.RequestRebuild() } -> std::same_as<void>;
      { mut.WaitForRebuilds() } -> std::same_as<void>;
    };

/// Type-erased ConcurrentWritablePointIndex, mirroring
/// AnyConcurrentWritableIndexOf on the range side — for holders of
/// heterogeneous concurrent maps (chained vs in-place vs cuckoo bases)
/// that still need to quiesce rebuild workers or read contention gauges.
/// Build is not erased (config types differ per base family); candidates
/// are built concretely and moved in. The handle itself is as thread-safe
/// as the wrapped index; moving the handle while ops are in flight is
/// undefined, as for any container.
class AnyConcurrentWritablePointIndex {
 public:
  AnyConcurrentWritablePointIndex() = default;

  template <typename I>
    requires ConcurrentWritablePointIndex<std::remove_cvref_t<I>> &&
             (!std::same_as<std::remove_cvref_t<I>,
                            AnyConcurrentWritablePointIndex>)
  explicit AnyConcurrentWritablePointIndex(I&& impl)
      : impl_(std::make_unique<Holder<std::remove_cvref_t<I>>>(
            std::forward<I>(impl))) {}

  AnyConcurrentWritablePointIndex(AnyConcurrentWritablePointIndex&&) noexcept =
      default;
  AnyConcurrentWritablePointIndex& operator=(
      AnyConcurrentWritablePointIndex&&) noexcept = default;

  /// True when no index has been wrapped yet; reads then answer like an
  /// empty map and writes are dropped (returning false).
  bool empty() const { return impl_ == nullptr; }

  bool Find(uint64_t key, hash::Record* out) const {
    return impl_ != nullptr && impl_->Find(key, out);
  }
  void FindBatch(std::span<const uint64_t> keys, std::span<hash::Record> recs,
                 std::span<uint8_t> found) const {
    if (impl_ != nullptr) {
      impl_->FindBatch(keys, recs, found);
    } else {
      const size_t n = std::min({keys.size(), recs.size(), found.size()});
      for (size_t i = 0; i < n; ++i) found[i] = 0;
    }
  }
  bool Insert(const hash::Record& rec) {
    return impl_ != nullptr && impl_->Insert(rec);
  }
  bool Upsert(const hash::Record& rec) {
    return impl_ != nullptr && impl_->Upsert(rec);
  }
  bool Erase(uint64_t key) { return impl_ != nullptr && impl_->Erase(key); }
  void RequestRebuild() {
    if (impl_ != nullptr) impl_->RequestRebuild();
  }
  void WaitForRebuilds() {
    if (impl_ != nullptr) impl_->WaitForRebuilds();
  }
  size_t num_records() const { return impl_ ? impl_->num_records() : 0; }
  size_t SizeBytes() const { return impl_ ? impl_->SizeBytes() : 0; }
  PointIndexStats Stats() const {
    return impl_ ? impl_->Stats() : PointIndexStats{};
  }
  ConcurrentIndexStats ConcurrentStats() const {
    return impl_ ? impl_->ConcurrentStats() : ConcurrentIndexStats{};
  }

 private:
  struct Iface {
    virtual ~Iface() = default;
    virtual bool Find(uint64_t key, hash::Record* out) const = 0;
    virtual void FindBatch(std::span<const uint64_t> keys,
                           std::span<hash::Record> recs,
                           std::span<uint8_t> found) const = 0;
    virtual bool Insert(const hash::Record& rec) = 0;
    virtual bool Upsert(const hash::Record& rec) = 0;
    virtual bool Erase(uint64_t key) = 0;
    virtual void RequestRebuild() = 0;
    virtual void WaitForRebuilds() = 0;
    virtual size_t num_records() const = 0;
    virtual size_t SizeBytes() const = 0;
    virtual PointIndexStats Stats() const = 0;
    virtual ConcurrentIndexStats ConcurrentStats() const = 0;
  };

  template <typename I>
  struct Holder final : Iface {
    template <typename U>
    explicit Holder(U&& v) : impl(std::forward<U>(v)) {}

    bool Find(uint64_t key, hash::Record* out) const override {
      return impl.Find(key, out);
    }
    void FindBatch(std::span<const uint64_t> keys,
                   std::span<hash::Record> recs,
                   std::span<uint8_t> found) const override {
      impl.FindBatch(keys, recs, found);
    }
    bool Insert(const hash::Record& rec) override { return impl.Insert(rec); }
    bool Upsert(const hash::Record& rec) override { return impl.Upsert(rec); }
    bool Erase(uint64_t key) override { return impl.Erase(key); }
    void RequestRebuild() override { impl.RequestRebuild(); }
    void WaitForRebuilds() override { impl.WaitForRebuilds(); }
    size_t num_records() const override { return impl.num_records(); }
    size_t SizeBytes() const override { return impl.SizeBytes(); }
    PointIndexStats Stats() const override { return impl.Stats(); }
    ConcurrentIndexStats ConcurrentStats() const override {
      return impl.ConcurrentStats();
    }

    I impl;
  };

  std::unique_ptr<Iface> impl_;
};

}  // namespace li::index

#endif  // LI_INDEX_CONCURRENT_POINT_INDEX_H_
