// The library-wide lookup contract, part 1: the `Approx` bound.
//
// The paper's central observation (§2, §3.4) is that *any* model — learned
// or classic — plus worst-case error bounds yields a B-Tree-grade range
// index: a B-Tree "predicts" the page holding a key with error = page
// size; an RMI predicts a position with per-leaf min/max error. `Approx`
// is that common currency. Every RangeIndex implementation returns one
// from ApproxPos(key), and every last-mile search strategy consumes one
// (search::FindInWindow), so indexes and search strategies compose freely
// — the seam the LIF synthesizer (§3.1) enumerates over.

#ifndef LI_INDEX_APPROX_H_
#define LI_INDEX_APPROX_H_

#include <algorithm>
#include <cstddef>

namespace li::index {

/// A position estimate with its worst-case search window.
///
/// Invariant, for an index built over n keys: lo <= pos <= hi <= n.
/// Exact structures answering a key above every stored key return
/// pos == n, so consumers that dereference data[pos] must clamp first.
/// For any *stored* key, the true lower_bound position lies in [lo, hi).
/// For absent keys under a non-monotonic model the window may miss; full
/// lookups recover with the §3.4 boundary fix-up (exponential search).
struct Approx {
  size_t pos = 0;  // clamped best position estimate
  size_t lo = 0;   // inclusive window start
  size_t hi = 0;   // exclusive window end

  /// Window width — the paper's "error" a lookup must search through.
  size_t Width() const { return hi - lo; }

  /// True iff position `p` falls inside the window.
  bool Contains(size_t p) const { return lo <= p && p < hi; }

  /// The zero-error window of an exact structure (B-Tree leaf hit,
  /// hash-resolved slot): pos is the answer, the window is one slot.
  static Approx Exact(size_t pos, size_t n) {
    return Approx{pos, pos, std::min(pos + 1, n)};
  }
};

}  // namespace li::index

#endif  // LI_INDEX_APPROX_H_
