// The library-wide lookup contract, part 3: writable range indexes.
//
// The paper's learned structures are built over an immutable sorted array;
// Appendix D.1 sketches the write path: "all inserts are kept in buffer
// and from time to time merged with a potential retraining of the model
// ... already widely used, for example in Bigtable". `WritableRangeIndex`
// is the contract for that shape of index: everything a `RangeIndex` can
// answer — Lookup keeps exact lower_bound semantics over the *live* key
// set (base plus unmerged inserts, minus erases), so read-only call sites
// keep working unmodified — plus the write surface below.
//
// Contract requirements beyond RangeIndex — semantics, complexity,
// thread-safety:
//
//   Insert(key) -> bool
//     Buffers an insert; returns true iff `key` was not live before (the
//     std::set convention). Cost for the delta implementation: one base
//     lookup to freeze the key's base membership + O(active_cap)
//     sorted-buffer insertion, amortized consolidation, and possibly a
//     policy-triggered merge.
//
//   Erase(key) -> bool
//     Buffers a tombstone; returns true iff `key` was live before.
//     Same cost shape as Insert.
//
//   Contains(key) -> bool
//     Membership over the live set; the newest buffered write wins over
//     the base. Cost: O(log delta) + one base lookup on delta miss.
//     Const.
//
//   Scan(from, limit) -> vector<key_type>
//     Up to `limit` live keys >= `from`, ascending, tombstones dropped,
//     buffered writes shadowing equal base keys. Cost: O(log) seek +
//     O(limit) merge; the delta implementation allocates exactly the
//     returned vector (regression-tested). Const.
//
//   size() -> size_t
//     Live key count (base + net delta). O(1). Const.
//
//   Merge() -> Status
//     Folds buffered writes into the base and retrains it (through the
//     base's Rebuild() retrain-reuse hook when present). Transactional:
//     on failure the previous base and delta remain intact. Cost:
//     O(n + delta) + base training. Also what the automatic merge
//     policies (dynamic/merge_policy.h) invoke.
//
//   Stats() -> WritableIndexStats
//     Per-op counters (below). O(1). Const.
//
// Thread-safety baseline: const members are safe from many threads only
// in the absence of concurrent writers; Insert/Erase/Merge require
// external exclusion. The refinement contract in
// index/concurrent_writable_index.h strengthens this to lock-free reads
// under concurrent writers and background merges.
//
// The canonical implementation is dynamic::DeltaRangeIndex<Base>, which
// wraps *any* RangeIndex base; the concept itself is implementation-
// agnostic so the LIF synthesizer and conformance suite can enumerate
// writable candidates the same way they enumerate read-only ones.

#ifndef LI_INDEX_WRITABLE_RANGE_INDEX_H_
#define LI_INDEX_WRITABLE_RANGE_INDEX_H_

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "index/approx.h"
#include "index/range_index.h"

namespace li::index {

/// Per-op counters every writable index reports — the observability the
/// merge policies act on (delta pressure) and benches print (hit rates,
/// merge amortization).
struct WritableIndexStats {
  uint64_t lookups = 0;        // Lookup + LookupBatch + Contains calls
  uint64_t contains = 0;       // Contains calls only
  uint64_t inserts = 0;
  uint64_t erases = 0;
  uint64_t delta_hits = 0;     // Contains calls answered by the delta
  uint64_t merges = 0;         // completed merge+retrain cycles
  uint64_t merged_keys = 0;    // keys written across all merges
  double last_merge_ns = 0.0;
  double total_merge_ns = 0.0;
  size_t delta_entries = 0;    // buffered writes not yet merged
  size_t delta_bytes = 0;      // memory held by the delta structure
  size_t base_keys = 0;        // keys in the immutable base

  /// Fraction of Contains calls the delta resolved without touching the
  /// base — the locality signal for merge tuning.
  double DeltaHitRate() const {
    return contains == 0 ? 0.0
                         : static_cast<double>(delta_hits) /
                               static_cast<double>(contains);
  }
};

/// A RangeIndex that also accepts point writes. Lookup keeps lower_bound
/// semantics over the *live* key set (base plus unmerged inserts, minus
/// erases), so read-only call sites keep working unmodified; Insert/Erase
/// return whether the key's liveness changed; Scan yields up to `limit`
/// live keys >= the probe in ascending order; Merge folds the delta into
/// the base (retraining learned bases) and is also what the automatic
/// merge policies invoke.
template <typename I>
concept WritableRangeIndex =
    RangeIndex<I> &&
    requires(I& mut, const I& idx, const typename I::key_type& key,
             size_t limit) {
      { mut.Insert(key) } -> std::same_as<bool>;
      { mut.Erase(key) } -> std::same_as<bool>;
      { idx.Contains(key) } -> std::same_as<bool>;
      {
        idx.Scan(key, limit)
      } -> std::same_as<std::vector<typename I::key_type>>;
      { idx.size() } -> std::same_as<size_t>;
      { mut.Merge() } -> std::same_as<Status>;
      { idx.Stats() } -> std::same_as<WritableIndexStats>;
    };

/// Type-erased WritableRangeIndex — the runtime face of the write path,
/// mirroring AnyRangeIndexOf: the LIF synthesizer grid-searches over
/// heterogeneous delta-wrapped candidates and hands back "whichever won"
/// without threading base template parameters everywhere. Build is not
/// erased (config types differ per base); candidates are built concretely
/// and moved in.
template <typename Key>
class AnyWritableRangeIndexOf {
 public:
  using key_type = Key;

  AnyWritableRangeIndexOf() = default;

  template <typename I>
    requires WritableRangeIndex<std::remove_cvref_t<I>> &&
             std::same_as<typename std::remove_cvref_t<I>::key_type, Key> &&
             (!std::same_as<std::remove_cvref_t<I>, AnyWritableRangeIndexOf>)
  explicit AnyWritableRangeIndexOf(I&& impl)
      : impl_(std::make_unique<Holder<std::remove_cvref_t<I>>>(
            std::forward<I>(impl))) {}

  AnyWritableRangeIndexOf(AnyWritableRangeIndexOf&&) noexcept = default;
  AnyWritableRangeIndexOf& operator=(AnyWritableRangeIndexOf&&) noexcept =
      default;

  /// True when no index has been wrapped yet; reads then answer like an
  /// empty index and writes are dropped (returning false).
  bool empty() const { return impl_ == nullptr; }

  bool Insert(const Key& key) { return impl_ ? impl_->Insert(key) : false; }
  bool Erase(const Key& key) { return impl_ ? impl_->Erase(key) : false; }
  bool Contains(const Key& key) const {
    return impl_ ? impl_->Contains(key) : false;
  }
  size_t Lookup(const Key& key) const {
    return impl_ ? impl_->Lookup(key) : 0;
  }
  size_t LowerBound(const Key& key) const { return Lookup(key); }
  Approx ApproxPos(const Key& key) const {
    return impl_ ? impl_->ApproxPos(key) : Approx{};
  }
  void LookupBatch(std::span<const Key> keys, std::span<size_t> out) const {
    if (impl_ != nullptr) {
      impl_->LookupBatch(keys, out);
    } else {
      for (size_t i = 0; i < out.size(); ++i) out[i] = 0;
    }
  }
  std::vector<Key> Scan(const Key& from, size_t limit) const {
    return impl_ ? impl_->Scan(from, limit) : std::vector<Key>{};
  }
  Status Merge() {
    return impl_ ? impl_->Merge()
                 : Status::FailedPrecondition("AnyWritableRangeIndex: empty");
  }
  size_t size() const { return impl_ ? impl_->size() : 0; }
  size_t SizeBytes() const { return impl_ ? impl_->SizeBytes() : 0; }
  WritableIndexStats Stats() const {
    return impl_ ? impl_->Stats() : WritableIndexStats{};
  }

 private:
  struct Iface {
    virtual ~Iface() = default;
    virtual bool Insert(const Key& key) = 0;
    virtual bool Erase(const Key& key) = 0;
    virtual bool Contains(const Key& key) const = 0;
    virtual size_t Lookup(const Key& key) const = 0;
    virtual Approx ApproxPos(const Key& key) const = 0;
    virtual void LookupBatch(std::span<const Key> keys,
                             std::span<size_t> out) const = 0;
    virtual std::vector<Key> Scan(const Key& from, size_t limit) const = 0;
    virtual Status Merge() = 0;
    virtual size_t size() const = 0;
    virtual size_t SizeBytes() const = 0;
    virtual WritableIndexStats Stats() const = 0;
  };

  template <typename I>
  struct Holder final : Iface {
    template <typename U>
    explicit Holder(U&& v) : impl(std::forward<U>(v)) {}

    bool Insert(const Key& key) override { return impl.Insert(key); }
    bool Erase(const Key& key) override { return impl.Erase(key); }
    bool Contains(const Key& key) const override {
      return impl.Contains(key);
    }
    size_t Lookup(const Key& key) const override { return impl.Lookup(key); }
    Approx ApproxPos(const Key& key) const override {
      return impl.ApproxPos(key);
    }
    void LookupBatch(std::span<const Key> keys,
                     std::span<size_t> out) const override {
      index::LookupBatch(impl, keys, out);
    }
    std::vector<Key> Scan(const Key& from, size_t limit) const override {
      return impl.Scan(from, limit);
    }
    Status Merge() override { return impl.Merge(); }
    size_t size() const override { return impl.size(); }
    size_t SizeBytes() const override { return impl.SizeBytes(); }
    WritableIndexStats Stats() const override { return impl.Stats(); }

    I impl;
  };

  std::unique_ptr<Iface> impl_;
};

/// The common case: integer-keyed writable indexes.
using AnyWritableRangeIndex = AnyWritableRangeIndexOf<uint64_t>;

}  // namespace li::index

#endif  // LI_INDEX_WRITABLE_RANGE_INDEX_H_
