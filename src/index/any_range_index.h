// Type-erased RangeIndex — the runtime face of the contract.
//
// The LIF synthesizer (§3.1) grid-searches over heterogeneous candidate
// types (RMIs with different top models, B-Tree variants); benches and
// servers want to hold "whichever index won" without threading template
// parameters everywhere. AnyRangeIndexOf<Key> erases any built RangeIndex
// with that key type behind one virtual hop per lookup. Build() is *not*
// erased — config types differ per index, so candidates are built
// concretely and then moved in.

#ifndef LI_INDEX_ANY_RANGE_INDEX_H_
#define LI_INDEX_ANY_RANGE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <utility>

#include "common/status.h"
#include "index/approx.h"
#include "index/range_index.h"
#include "index/snapshottable.h"
#include "snapshot/snapshot.h"

namespace li::index {

template <typename Key>
class AnyRangeIndexOf {
 public:
  using key_type = Key;

  AnyRangeIndexOf() = default;

  /// Wraps a built index by move (or copy, for copyable index types).
  template <typename I>
    requires RangeIndex<std::remove_cvref_t<I>> &&
             std::same_as<typename std::remove_cvref_t<I>::key_type, Key> &&
             (!std::same_as<std::remove_cvref_t<I>, AnyRangeIndexOf>)
  explicit AnyRangeIndexOf(I&& impl)
      : impl_(std::make_unique<Holder<std::remove_cvref_t<I>>>(
            std::forward<I>(impl))) {}

  AnyRangeIndexOf(AnyRangeIndexOf&&) noexcept = default;
  AnyRangeIndexOf& operator=(AnyRangeIndexOf&&) noexcept = default;

  /// True when no index has been wrapped yet; lookups then answer 0 like
  /// an index built over an empty key array.
  bool empty() const { return impl_ == nullptr; }

  Approx ApproxPos(const Key& key) const {
    return impl_ ? impl_->ApproxPos(key) : Approx{};
  }
  size_t Lookup(const Key& key) const {
    return impl_ ? impl_->Lookup(key) : 0;
  }
  /// Alias kept so erased indexes drop into existing lower_bound call sites.
  size_t LowerBound(const Key& key) const { return Lookup(key); }
  size_t SizeBytes() const { return impl_ ? impl_->SizeBytes() : 0; }

  void LookupBatch(std::span<const Key> keys, std::span<size_t> out) const {
    if (impl_ != nullptr) {
      impl_->LookupBatch(keys, out);
    } else {
      for (size_t i = 0; i < out.size(); ++i) out[i] = 0;
    }
  }

  // ---- Persistence (docs/PERSISTENCE.md) ----
  // The erased writer side: sections of whichever concrete index is
  // wrapped, plus its SnapshotKindName tag so a loader (the LIF winner
  // persistence in lif/synthesizer.h) can dispatch back to the concrete
  // OpenSnapshot. Opening is inherently type-directed and therefore not
  // erased here.

  /// The wrapped index's snapshot kind tag ("" when it has none or the
  /// wrapper is empty).
  const char* SnapshotKind() const {
    return impl_ ? impl_->SnapshotKind() : "";
  }

  /// Writes the wrapped index's sections; Unimplemented when the wrapped
  /// type has no section protocol (or nothing is wrapped).
  Status WriteSections(snapshot::SnapshotWriter& writer,
                       const std::string& prefix) const {
    if (impl_ == nullptr) {
      return Status::FailedPrecondition("AnyRangeIndexOf: empty");
    }
    return impl_->WriteSections(writer, prefix);
  }

  Status WriteSnapshot(const std::string& path) const {
    return index::WriteSnapshotViaSections(*this, path);
  }

 private:
  struct Iface {
    virtual ~Iface() = default;
    virtual Approx ApproxPos(const Key& key) const = 0;
    virtual size_t Lookup(const Key& key) const = 0;
    virtual size_t SizeBytes() const = 0;
    virtual void LookupBatch(std::span<const Key> keys,
                             std::span<size_t> out) const = 0;
    virtual const char* SnapshotKind() const = 0;
    virtual Status WriteSections(snapshot::SnapshotWriter& writer,
                                 const std::string& prefix) const = 0;
  };

  template <typename I>
  struct Holder final : Iface {
    template <typename U>
    explicit Holder(U&& v) : impl(std::forward<U>(v)) {}

    Approx ApproxPos(const Key& key) const override {
      return impl.ApproxPos(key);
    }
    size_t Lookup(const Key& key) const override { return impl.Lookup(key); }
    size_t SizeBytes() const override { return impl.SizeBytes(); }
    void LookupBatch(std::span<const Key> keys,
                     std::span<size_t> out) const override {
      index::LookupBatch(impl, keys, out);
    }
    const char* SnapshotKind() const override {
      if constexpr (requires {
                      { I::SnapshotKindName() } -> std::convertible_to<
                          const char*>;
                    }) {
        return I::SnapshotKindName();
      } else {
        return "";
      }
    }
    Status WriteSections(snapshot::SnapshotWriter& writer,
                         const std::string& prefix) const override {
      if constexpr (SectionSnapshottable<I>) {
        return impl.WriteSections(writer, prefix);
      } else {
        return Status::Unimplemented(
            "AnyRangeIndexOf: wrapped index has no section snapshot "
            "protocol");
      }
    }

    I impl;
  };

  std::unique_ptr<const Iface> impl_;
};

/// The common case: integer-keyed indexes, as in Figures 4/5.
using AnyRangeIndex = AnyRangeIndexOf<uint64_t>;

}  // namespace li::index

#endif  // LI_INDEX_ANY_RANGE_INDEX_H_
