// Learned sort (§7 "Beyond Indexing: Learned Algorithms"): "the basic idea
// to speed-up sorting is to use an existing CDF model F to put the records
// roughly in sorted order and then correct the nearly perfectly sorted
// data, for example, with insertion sort."
//
// Pipeline: (1) fit a 2-stage RMI over a sorted sample, (2) counting-
// scatter every element into its predicted-rank bucket, (3) repair each
// bucket — insertion sort for small buckets (nearly sorted already),
// std::sort for the skew-tail buckets so the worst case stays O(n log n).

#ifndef LI_SORT_LEARNED_SORT_H_
#define LI_SORT_LEARNED_SORT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace li::sort {

struct LearnedSortConfig {
  /// Minimum CDF training sample (grown to 2x the bucket count so the
  /// model's bucket error stays O(1) repair steps).
  size_t sample_size = 10'000;
  /// Target average bucket population. Larger buckets keep the boundary
  /// table cache-resident; per-bucket sorting costs n log(bucket) total.
  size_t elems_per_bucket = 256;
  size_t insertion_sort_cutoff = 64;  // larger buckets use std::sort
};

/// Sorts `data` ascending using the CDF-model scatter + fixup pipeline.
Status LearnedSort(std::vector<uint64_t>* data,
                   const LearnedSortConfig& config = {});

}  // namespace li::sort

#endif  // LI_SORT_LEARNED_SORT_H_
