// Learned join primitives (§7 "Beyond Indexing": "a CDF model has also the
// potential to speed-up sorting and joins").
//
// For a sorted-set intersection where one side is much smaller, a learned
// index over the big side turns the join into |small| O(1)-ish probes —
// the model replaces the per-probe tree descent of an index nested-loop
// join. LinearMergeIntersect is the classic baseline; the crossover
// between the two as |small|/|big| grows is the experiment
// `bench_learned_join` plots.

#ifndef LI_SORT_LEARNED_JOIN_H_
#define LI_SORT_LEARNED_JOIN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "rmi/rmi.h"

namespace li::sort {

/// Classic linear merge intersection of two sorted key sets.
inline size_t LinearMergeIntersect(std::span<const uint64_t> a,
                                   std::span<const uint64_t> b,
                                   std::vector<uint64_t>* out = nullptr) {
  size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      if (out != nullptr) out->push_back(a[i]);
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

/// Index nested-loop intersection: probes a prebuilt learned index over
/// the big side once per key of the small side.
template <typename TopModel>
size_t LearnedProbeIntersect(std::span<const uint64_t> small,
                             const rmi::Rmi<TopModel>& big_index,
                             std::vector<uint64_t>* out = nullptr) {
  size_t count = 0;
  const auto big = big_index.data();
  for (const uint64_t key : small) {
    const size_t pos = big_index.LowerBound(key);
    if (pos < big.size() && big[pos] == key) {
      if (out != nullptr) out->push_back(key);
      ++count;
    }
  }
  return count;
}

/// Learned merge: exploits that both probe sets are sorted — each lookup
/// gallops from the previous match position instead of re-running the
/// model, falling back to the model only after long gaps. This is the
/// "use the CDF to skip" middle ground between merge and probe joins.
template <typename TopModel>
size_t LearnedSkipIntersect(std::span<const uint64_t> small,
                            const rmi::Rmi<TopModel>& big_index,
                            std::vector<uint64_t>* out = nullptr) {
  size_t count = 0;
  const auto big = big_index.data();
  size_t cursor = 0;
  constexpr size_t kGallopLimit = 64;  // beyond this, ask the model
  for (const uint64_t key : small) {
    // Cheap forward gallop from the previous position.
    size_t step = 1, probe = cursor;
    bool fell_back = false;
    while (probe < big.size() && big[probe] < key) {
      if (step > kGallopLimit) {
        fell_back = true;
        break;
      }
      cursor = probe + 1;
      probe = cursor + step;
      step <<= 1;
    }
    size_t pos;
    if (fell_back || probe >= big.size()) {
      pos = fell_back ? big_index.LowerBound(key)
                      : search::BinarySearch(big.data(), cursor, big.size(),
                                             key);
    } else {
      pos = search::BinarySearch(big.data(), cursor, probe + 1, key);
    }
    cursor = pos;
    if (pos < big.size() && big[pos] == key) {
      if (out != nullptr) out->push_back(key);
      ++count;
      ++cursor;
    }
  }
  return count;
}

}  // namespace li::sort

#endif  // LI_SORT_LEARNED_JOIN_H_
