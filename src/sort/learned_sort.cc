#include "sort/learned_sort.h"

#include <algorithm>

#include "data/datasets.h"
#include "rmi/rmi.h"
#include "search/search.h"

namespace li::sort {

namespace {

void InsertionSort(uint64_t* begin, uint64_t* end) {
  for (uint64_t* it = begin + 1; it < end; ++it) {
    const uint64_t v = *it;
    uint64_t* j = it;
    while (j > begin && j[-1] > v) {
      *j = j[-1];
      --j;
    }
    *j = v;
  }
}

}  // namespace

Status LearnedSort(std::vector<uint64_t>* data,
                   const LearnedSortConfig& config) {
  auto& v = *data;
  const size_t n = v.size();
  if (n < 2) return Status::OK();
  if (n <= config.insertion_sort_cutoff) {
    InsertionSort(v.data(), v.data() + n);
    return Status::OK();
  }

  // ---- 1. Train the CDF model on a strided sample ----
  const size_t num_buckets_target =
      std::max<size_t>(1, n / std::max<size_t>(1, config.elems_per_bucket));
  const size_t sample_n =
      std::min(n, std::max(config.sample_size, 2 * num_buckets_target));
  std::vector<uint64_t> sample;
  sample.reserve(sample_n);
  const double stride = static_cast<double>(n) / static_cast<double>(sample_n);
  for (size_t i = 0; i < sample_n; ++i) {
    sample.push_back(v[static_cast<size_t>(i * stride)]);
  }
  std::sort(sample.begin(), sample.end());

  const size_t num_buckets = num_buckets_target;

  // Equi-depth bucket boundaries from the sample quantiles. boundaries[j]
  // is the smallest key of bucket j+1; bucket_of(x) = upper_bound over the
  // boundaries is monotone in the key by construction — the property the
  // scatter needs so that sorting each bucket independently yields a
  // globally sorted array. (A raw RMI prediction is *not* guaranteed
  // monotone across leaf models, §3.4.)
  std::vector<uint64_t> boundaries(num_buckets - 1);
  for (size_t j = 0; j + 1 < num_buckets; ++j) {
    boundaries[j] = sample[(j + 1) * sample.size() / num_buckets];
  }
  data::MakeStrictlyIncreasing(&boundaries);  // dedupe quantile collisions

  // The learned part: a 2-stage RMI *over the boundary array itself* —
  // bucket_of(x) = upper_bound(boundaries, x) answered by the learned
  // index's error-bounded search. The boundary array is small (L2
  // resident) so the last-mile compares are cheap.
  rmi::RmiConfig rc;
  rc.num_leaf_models = std::max<size_t>(16, boundaries.size() / 16);
  rc.top_train_sample = 0;
  rmi::LinearRmi model;
  LI_RETURN_IF_ERROR(model.Build(boundaries, rc));

  auto bucket_of = [&](uint64_t x) -> size_t {
    // upper_bound(x) == lower_bound(x + 1) for integer keys.
    if (LI_UNLIKELY(x == UINT64_MAX)) return num_buckets - 1;
    return model.LowerBound(x + 1);
  };

  // ---- 2. Counting scatter into monotone buckets ----
  std::vector<uint32_t> counts(num_buckets + 1, 0);
  std::vector<uint32_t> bucket(n);
  for (size_t i = 0; i < n; ++i) {
    bucket[i] = static_cast<uint32_t>(bucket_of(v[i]));
    ++counts[bucket[i] + 1];
  }
  for (size_t b = 0; b < num_buckets; ++b) counts[b + 1] += counts[b];
  std::vector<uint64_t> out(n);
  {
    // Software write-combining: stage one cache line per bucket so the
    // scatter writes whole 64-byte lines instead of random 8-byte stores.
    constexpr size_t kLine = 8;  // uint64 per cache line
    std::vector<uint32_t> cursor(counts.begin(), counts.end() - 1);
    std::vector<uint64_t> stage(num_buckets * kLine);
    std::vector<uint8_t> fill(num_buckets, 0);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t b = bucket[i];
      stage[b * kLine + fill[b]] = v[i];
      if (++fill[b] == kLine) {
        uint64_t* dst = out.data() + cursor[b];
        const uint64_t* src = stage.data() + b * kLine;
        for (size_t k = 0; k < kLine; ++k) dst[k] = src[k];
        cursor[b] += kLine;
        fill[b] = 0;
      }
    }
    for (size_t b = 0; b < num_buckets; ++b) {
      for (size_t k = 0; k < fill[b]; ++k) {
        out[cursor[b] + k] = stage[b * kLine + k];
      }
    }
  }

  // ---- 3. Per-bucket repair ----
  for (size_t b = 0; b < num_buckets; ++b) {
    uint64_t* begin = out.data() + counts[b];
    uint64_t* end = out.data() + counts[b + 1];
    const size_t len = static_cast<size_t>(end - begin);
    if (len < 2) continue;
    if (len <= config.insertion_sort_cutoff) {
      InsertionSort(begin, end);
    } else {
      std::sort(begin, end);  // skew-tail escape hatch
    }
  }
  v.swap(out);
  return Status::OK();
}

}  // namespace li::sort
