// Last-mile search strategies (§3.4). Every learned range lookup ends with
// a bounded search for lower_bound(key) inside [lo, hi); these routines
// provide the paper's strategies:
//
//  * BinarySearch         — plain lower_bound (baseline)
//  * BiasedBinarySearch   — "Model Biased Search": binary search whose first
//                           midpoint is the model's predicted position.
//  * BiasedQuaternary     — three initial split points pos-sigma, pos,
//                           pos+sigma (all prefetched), then quaternary.
//  * ExponentialSearch    — galloping outwards from the prediction; needs no
//                           stored error bounds (the non-monotonic escape
//                           hatch discussed in §3.4).
//  * InterpolationSearch  — arithmetic interpolation (Figure-5 baseline).
//  * BranchFreeScan       — branch-free linear scan (the AVX lookup-table
//                           building block [14]).
//
// All functions return the index of the first element >= key within
// [lo, hi) relative to `data`, i.e. lower_bound semantics; `hi` is returned
// when every element in the window is < key.

#ifndef LI_SEARCH_SEARCH_H_
#define LI_SEARCH_SEARCH_H_

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/bits.h"
#include "index/approx.h"
#include "simd/dispatch.h"

namespace li::search {

/// Plain binary search (lower_bound) over data[lo, hi).
template <typename T>
size_t BinarySearch(const T* data, size_t lo, size_t hi, const T& key) {
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (data[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Plain upper_bound over data[lo, hi): first index with data[i] > key.
template <typename T>
size_t UpperBound(const T* data, size_t lo, size_t hi, const T& key) {
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (key < data[mid]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

/// Model Biased Search: binary search with the first midpoint set to the
/// predicted position (clamped into the window).
template <typename T>
size_t BiasedBinarySearch(const T* data, size_t lo, size_t hi, const T& key,
                          size_t predicted) {
  if (lo >= hi) return lo;
  size_t mid = std::clamp(predicted, lo, hi - 1);
  while (lo < hi) {
    if (data[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
    mid = lo + (hi - lo) / 2;
  }
  return lo;
}

/// Biased Quaternary Search: initial split points {pos-sigma, pos,
/// pos+sigma}, prefetched together so the memory system overlaps the three
/// potential cache misses; afterwards classic quaternary splitting.
template <typename T>
size_t BiasedQuaternarySearch(const T* data, size_t lo, size_t hi,
                              const T& key, size_t predicted, size_t sigma) {
  if (lo >= hi) return lo;
  sigma = std::max<size_t>(sigma, 1);
  bool first = true;
  while (hi - lo > 8) {
    size_t q1, q2, q3;
    if (first) {
      q2 = std::clamp(predicted, lo, hi - 1);
      q1 = q2 > lo + sigma ? q2 - sigma : lo;
      q3 = q2 + sigma < hi - 1 ? q2 + sigma : hi - 1;
      first = false;
    } else {
      const size_t quarter = (hi - lo) / 4;
      q1 = lo + quarter;
      q2 = lo + 2 * quarter;
      q3 = lo + 3 * quarter;
    }
    PrefetchRead(&data[q1]);
    PrefetchRead(&data[q2]);
    PrefetchRead(&data[q3]);
    if (data[q2] < key) {
      if (data[q3] < key) {
        lo = q3 + 1;
      } else {
        lo = q2 + 1;
        hi = q3 + 1;
      }
    } else {
      if (data[q1] < key) {
        lo = q1 + 1;
        hi = q2 + 1;
      } else {
        hi = q1 + 1;
      }
    }
  }
  return BinarySearch(data, lo, hi, key);
}

/// Exponential (galloping) search outward from the predicted position; the
/// final bracket is resolved with binary search. Window-free: only needs
/// the array size, not stored min/max errors.
template <typename T>
size_t ExponentialSearch(const T* data, size_t n, const T& key,
                         size_t predicted) {
  if (n == 0) return 0;
  size_t pos = std::min(predicted, n - 1);
  if (data[pos] < key) {
    // Gallop right: key is above pos.
    size_t step = 1;
    size_t lo = pos + 1;
    size_t hi = lo;
    while (hi < n && data[hi] < key) {
      lo = hi + 1;
      step <<= 1;
      hi = pos + step;
      if (hi >= n) {
        hi = n;
        break;
      }
    }
    return BinarySearch(data, lo, std::min(hi, n), key);
  }
  // Gallop left: key is at or below pos.
  size_t step = 1;
  size_t hi = pos;
  size_t lo = pos;
  while (lo > 0 && !(data[lo - 1] < key)) {
    hi = lo;
    if (step >= pos) {
      lo = 0;
      break;
    }
    lo = pos - step;
    step <<= 1;
    if (data[lo] < key) {
      ++lo;  // bracket found: data[lo-1] < key <= data[hi]
      break;
    }
  }
  return BinarySearch(data, lo, hi, key);
}

/// Interpolation search for arithmetic key types. Falls back to binary
/// when the window degenerates (duplicate-heavy or extreme skew).
template <typename T>
size_t InterpolationSearch(const T* data, size_t lo, size_t hi, const T& key) {
  static_assert(std::is_arithmetic_v<T>,
                "interpolation search needs arithmetic keys");
  // Interpolation converges in O(log log n) on near-uniform data but can
  // degrade to O(n) single-sided steps under heavy skew; cap the number of
  // probes at ~2 log2(window) and fall back to binary search.
  int probes_left = 2 * (64 - std::countl_zero(static_cast<uint64_t>(
                                  hi - lo + 1)));
  while (hi - lo > 16) {
    if (probes_left-- <= 0) return BinarySearch(data, lo, hi, key);
    const T a = data[lo];
    const T b = data[hi - 1];
    if (!(a < key)) return lo;  // key <= data[lo]: lower_bound is lo
    if (b < key) return hi;     // whole window below key
    // Here a < key <= b, so b > a and the interpolation is well defined.
    const double frac =
        static_cast<double>(key - a) / static_cast<double>(b - a);
    size_t mid =
        lo + static_cast<size_t>(frac * static_cast<double>(hi - 1 - lo));
    // Clamp to [lo, hi-2] so both branches strictly shrink the window
    // (mid == hi-1 would leave `hi` unchanged and loop forever on skew).
    mid = std::clamp(mid, lo, hi - 2);
    if (data[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid + 1;  // keep data[hi-1] >= key as upper sentinel
    }
  }
  return BinarySearch(data, lo, hi, key);
}

/// Branch-free linear scan: counts elements < key. Vectorizes to SIMD
/// compares under -O2 -march=native; used by the lookup-table baseline.
inline size_t BranchFreeScan(const uint64_t* data, size_t n, uint64_t key) {
  // A single counted loop; GCC/Clang lower it to packed 64-bit compares
  // under -O2 -march=native (the "AVX optimized branch-free scan" [14]).
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(data[i] < key);
  }
  return count;
}

/// Strategy selector used by index configs and the LIF synthesizer.
enum class Strategy {
  kBinary,
  kBiasedBinary,
  kBiasedQuaternary,
  kExponential,
  kInterpolation,
};

inline const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kBinary: return "binary";
    case Strategy::kBiasedBinary: return "biased-binary";
    case Strategy::kBiasedQuaternary: return "biased-quaternary";
    case Strategy::kExponential: return "exponential";
    case Strategy::kInterpolation: return "interpolation";
  }
  return "?";
}

/// Strategy dispatch over an `Approx` window — the shared last mile of
/// every learned lookup. Runs the selected bounded search inside
/// [a.lo, a.hi) and applies the §3.4 boundary fix-up: a result pinned to a
/// window edge (with data beyond it) means the true answer may lie outside
/// the bound (absent key + non-monotonic model), so gallop from there.
/// `n` is the full data size; `sigma` seeds the quaternary split width.
/// Interpolation needs arithmetic keys and degrades to binary otherwise.
/// Width-1 windows hit the fix-up even on exact predictions; that costs
/// only O(1) compares (the gallop brackets immediately from a correct
/// position) and is what keeps degenerate windows — empty-leaf constant
/// models with zero recorded error — correct for absent keys.
template <typename T>
size_t FindInWindow(Strategy strategy, const T* data, size_t n, const T& key,
                    const index::Approx& a, size_t sigma = 1) {
  size_t pos;
  switch (strategy) {
    case Strategy::kBiasedBinary:
      pos = BiasedBinarySearch(data, a.lo, a.hi, key, a.pos);
      break;
    case Strategy::kBiasedQuaternary:
      pos = BiasedQuaternarySearch(data, a.lo, a.hi, key, a.pos, sigma);
      break;
    case Strategy::kExponential:
      // Window-free: gallops from the prediction, no fix-up needed.
      return ExponentialSearch(data, n, key, a.pos);
    case Strategy::kInterpolation:
      if constexpr (std::is_arithmetic_v<T>) {
        pos = InterpolationSearch(data, a.lo, a.hi, key);
      } else {
        pos = BinarySearch(data, a.lo, a.hi, key);
      }
      break;
    case Strategy::kBinary:
    default:
      pos = BinarySearch(data, a.lo, a.hi, key);
      break;
  }
  if (LI_UNLIKELY((pos == a.lo && a.lo > 0) || (pos == a.hi && a.hi < n))) {
    return ExponentialSearch(data, n, key, pos);
  }
  return pos;
}

/// Branchless bounded search through the SIMD kernel table: compare-and-
/// popcount lower_bound over [a.lo, a.hi) with the same §3.4 boundary
/// fix-up as FindInWindow. Replaces the per-key strategy dispatch on the
/// vectorized batch path — data-dependent branch mispredicts, not compare
/// count, dominate the last mile at batch sizes, so one branch-free shape
/// beats the tuned scalar strategies there. Key types without a kernel
/// (strings) fall back to plain binary search.
template <typename T>
size_t FindInWindowBranchless(const simd::Kernels& kern, const T* data,
                              size_t n, const T& key,
                              const index::Approx& a) {
  size_t pos;
  if constexpr (std::is_same_v<T, uint64_t>) {
    pos = kern.lower_bound_u64(data, a.lo, a.hi, key);
  } else if constexpr (std::is_same_v<T, double>) {
    pos = kern.lower_bound_f64(data, a.lo, a.hi, key);
  } else {
    pos = BinarySearch(data, a.lo, a.hi, key);
  }
  if (LI_UNLIKELY((pos == a.lo && a.lo > 0) || (pos == a.hi && a.hi < n))) {
    return ExponentialSearch(data, n, key, pos);
  }
  return pos;
}

}  // namespace li::search

#endif  // LI_SEARCH_SEARCH_H_
