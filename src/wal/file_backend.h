// Pluggable file I/O layer for the write-ahead log. Production code uses
// DefaultFileBackend() (plain write/fdatasync with EINTR handling); the
// crash-injection harness (tools/crashkit, tests/crash_recovery_test)
// substitutes CrashFileBackend, which counts record writes and sync
// calls and, at an armed trigger point, simulates a crash:
//
//   kTornWrite  — apply only a prefix of the triggering write (a torn
//                 record on the tail page), then die
//   kDropTail   — ftruncate the file back to the last fdatasync'd size
//                 (un-synced page-cache tail lost, the OS-crash model),
//                 then die
//   kDropBeforeSync — same truncation but triggered on the N-th Sync
//                 call, i.e. a crash that lands "mid-fsync"
//   kBeforeWrite / kAfterWrite — die on a clean record boundary just
//                 before / just after the triggering write completes
//
// "Die" is SIGKILL by default (no destructors, no flushes — exactly what
// the recovery path must survive); unit tests set kill_process = false
// and get a sticky error status instead so the fault layer itself can be
// tested in-process.

#ifndef LI_WAL_FILE_BACKEND_H_
#define LI_WAL_FILE_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "common/status.h"

namespace li::wal {

/// Append-oriented file I/O. Write() has full-write semantics (loops on
/// short writes and EINTR); Sync() is fdatasync. One backend instance
/// may be shared by every WalWriter of a process (the sharded path hands
/// one to each per-shard log so a single crash plan covers them all).
class FileBackend {
 public:
  virtual ~FileBackend() = default;
  virtual Status Write(int fd, const void* data, size_t n) = 0;
  virtual Status Sync(int fd) = 0;
};

/// Process-wide real-I/O backend (stateless).
FileBackend* DefaultFileBackend();

/// Fault-injecting backend for crash tests. Tracks the last successfully
/// synced size per fd (adopting pre-existing file content — which the
/// writer created with an fsync'd header — as synced on first sight) so
/// the drop modes can truncate precisely to the durable prefix. Counters
/// are process-global across all logs sharing the backend; the harness
/// drives single-writer workloads, so no locking.
class CrashFileBackend : public FileBackend {
 public:
  enum class Mode : int {
    kNone = 0,        // never trigger (pass-through)
    kBeforeWrite,     // die before applying the N-th write
    kAfterWrite,      // die after the N-th write fully completes
    kTornWrite,       // apply torn_bytes of the N-th write, then die
    kDropTail,        // on the N-th write: truncate to last synced size, die
    kDropBeforeSync,  // on the N-th Sync call: truncate to last synced
                      // size (the fsync "never happened"), die
  };

  struct Plan {
    Mode mode = Mode::kNone;
    uint64_t trigger_at = 0;   // 1-based write (or sync) ordinal
    size_t torn_bytes = 0;     // kTornWrite: bytes of the write to apply
    bool kill_process = true;  // false: return sticky kInternal instead
  };

  explicit CrashFileBackend(Plan plan) : plan_(plan) {}

  Status Write(int fd, const void* data, size_t n) override;
  Status Sync(int fd) override;

  uint64_t writes() const { return writes_; }
  uint64_t syncs() const { return syncs_; }
  bool crashed() const { return crashed_; }

 private:
  Status Crash(int fd, bool truncate_to_synced);
  uint64_t SyncedSize(int fd);

  Plan plan_;
  uint64_t writes_ = 0;
  uint64_t syncs_ = 0;
  bool crashed_ = false;
  std::unordered_map<int, uint64_t> synced_size_;
};

}  // namespace li::wal

#endif  // LI_WAL_FILE_BACKEND_H_
