#include "wal/wal.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace li::wal {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

int64_t NowNs() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

Status ReadExact(int fd, uint64_t off, void* out, size_t n, bool* short_read) {
  *short_read = false;
  char* p = static_cast<char*>(out);
  size_t left = n;
  while (left > 0) {
    const ssize_t r = ::pread(fd, p, left, static_cast<off_t>(off));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("pread"));
    }
    if (r == 0) {  // EOF before n bytes
      *short_read = true;
      return Status::OK();
    }
    p += r;
    off += static_cast<uint64_t>(r);
    left -= static_cast<size_t>(r);
  }
  return Status::OK();
}

bool ValidRecordType(uint32_t t) {
  return t == static_cast<uint32_t>(WalRecordType::kInsert) ||
         t == static_cast<uint32_t>(WalRecordType::kErase);
}

/// Write a header-only log file at `path` atomically: tmp + fsync +
/// rename. After this returns OK, `path` always has a valid header.
Status PublishHeaderFile(const std::string& path, const WalFileHeader& hdr,
                         const void* tail, size_t tail_len) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                        0644);
  if (fd < 0) return Status::Internal(Errno("open " + tmp));
  Status st = DefaultFileBackend()->Write(fd, &hdr, sizeof(hdr));
  if (st.ok() && tail_len > 0) {
    st = DefaultFileBackend()->Write(fd, tail, tail_len);
  }
  if (st.ok()) st = DefaultFileBackend()->Sync(fd);
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::Internal(Errno("rename " + tmp));
  }
  return Status::OK();
}

Result<int> OpenAppendFd(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) return Status::Internal(Errno("open " + path));
  return fd;
}

}  // namespace

Result<WalReplayResult> Replay(const std::string& path,
                               const WalRecordFn& fn) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no WAL at " + path);
    return Status::Internal(Errno("open " + path));
  }
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};

  struct stat stbuf;
  if (::fstat(fd, &stbuf) != 0) return Status::Internal(Errno("fstat"));

  WalReplayResult out;
  out.file_bytes = static_cast<uint64_t>(stbuf.st_size);

  WalFileHeader hdr;
  bool short_read = false;
  LI_RETURN_IF_ERROR(ReadExact(fd, 0, &hdr, sizeof(hdr), &short_read));
  if (short_read) {
    return Status::InvalidArgument(path + ": truncated WAL header");
  }
  if (hdr.magic != kWalMagic) {
    return Status::InvalidArgument(path + ": not a WAL file (bad magic)");
  }
  if (hdr.version != kWalFormatVersion) {
    return Status::InvalidArgument(path + ": unsupported WAL version " +
                                   std::to_string(hdr.version));
  }
  if (hdr.header_crc != hdr.ComputeCrc()) {
    return Status::InvalidArgument(path + ": WAL header CRC mismatch");
  }

  out.base_lsn = hdr.base_lsn;
  out.last_lsn = hdr.base_lsn;
  out.valid_bytes = sizeof(hdr);

  std::vector<uint8_t> payload;
  uint64_t off = sizeof(hdr);
  while (off < out.file_bytes) {
    WalRecordHeader rec;
    if (out.file_bytes - off < sizeof(rec)) {
      out.torn_tail = true;  // partial frame header at EOF
      break;
    }
    LI_RETURN_IF_ERROR(ReadExact(fd, off, &rec, sizeof(rec), &short_read));
    if (short_read) {
      out.torn_tail = true;
      break;
    }
    // Validate the frame as a unit: length bound first (so a corrupt
    // length can never drive a huge allocation), then type, strict LSN
    // continuity, full payload presence, and finally the CRC.
    if (rec.len > kMaxWalPayload || !ValidRecordType(rec.type) ||
        rec.lsn != out.last_lsn + 1 ||
        (hdr.payload_size != 0 && rec.len != hdr.payload_size)) {
      out.torn_tail = true;
      break;
    }
    if (out.file_bytes - off - sizeof(rec) < rec.len) {
      out.torn_tail = true;
      break;
    }
    payload.resize(rec.len);
    LI_RETURN_IF_ERROR(
        ReadExact(fd, off + sizeof(rec), payload.data(), rec.len,
                  &short_read));
    if (short_read) {
      out.torn_tail = true;
      break;
    }
    if (rec.crc != rec.ComputeCrc(payload.data())) {
      out.torn_tail = true;
      break;
    }
    if (fn) {
      LI_RETURN_IF_ERROR(fn(static_cast<WalRecordType>(rec.type), rec.lsn,
                            payload.data(), rec.len));
    }
    out.last_lsn = rec.lsn;
    ++out.records;
    off += sizeof(rec) + rec.len;
    out.valid_bytes = off;
  }
  return out;
}

WalWriter::~WalWriter() { Close(); }

WalWriter::WalWriter(WalWriter&& other) noexcept { *this = std::move(other); }

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    Close();
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    cfg_ = std::move(other.cfg_);
    backend_ = other.backend_;
    payload_size_ = other.payload_size_;
    stats_ = other.stats_;
    appends_since_sync_ = other.appends_since_sync_;
    last_sync_ns_ = other.last_sync_ns_;
    io_error_ = other.io_error_;
    other.fd_ = -1;
    other.backend_ = nullptr;
  }
  return *this;
}

void WalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<WalWriter> WalWriter::Create(const std::string& path,
                                    uint64_t base_lsn, uint32_t payload_size,
                                    const DurabilityConfig& cfg) {
  WalFileHeader hdr;
  hdr.base_lsn = base_lsn;
  hdr.payload_size = payload_size;
  hdr.header_crc = hdr.ComputeCrc();
  LI_RETURN_IF_ERROR(PublishHeaderFile(path, hdr, nullptr, 0));

  auto fd = OpenAppendFd(path);
  if (!fd.ok()) return fd.status();

  WalWriter w;
  w.path_ = path;
  w.fd_ = fd.value();
  w.cfg_ = cfg;
  w.backend_ = cfg.backend != nullptr ? cfg.backend : DefaultFileBackend();
  w.payload_size_ = payload_size;
  w.stats_.base_lsn = base_lsn;
  w.stats_.last_lsn = base_lsn;
  w.stats_.last_synced_lsn = base_lsn;
  w.last_sync_ns_ = NowNs();
  return w;
}

Result<WalWriter> WalWriter::Open(const std::string& path,
                                  const DurabilityConfig& cfg,
                                  WalReplayResult* scan) {
  auto replay = Replay(path, nullptr);
  if (!replay.ok()) return replay.status();
  const WalReplayResult& r = replay.value();
  if (scan != nullptr) *scan = r;

  auto fd = OpenAppendFd(path);
  if (!fd.ok()) return fd.status();
  if (r.valid_bytes < r.file_bytes) {
    // Torn or corrupt tail: cut it off so the next record lands on a
    // valid frame boundary (O_APPEND then writes at the new EOF).
    if (::ftruncate(fd.value(), static_cast<off_t>(r.valid_bytes)) != 0) {
      const Status st = Status::Internal(Errno("ftruncate " + path));
      ::close(fd.value());
      return st;
    }
  }

  WalWriter w;
  w.path_ = path;
  w.fd_ = fd.value();
  w.cfg_ = cfg;
  w.backend_ = cfg.backend != nullptr ? cfg.backend : DefaultFileBackend();
  // Re-derive the fixed payload size from the file so appends after a
  // reopen keep the same framing discipline.
  WalFileHeader hdr;
  {
    const int rfd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    bool short_read = false;
    if (rfd < 0 ||
        !ReadExact(rfd, 0, &hdr, sizeof(hdr), &short_read).ok() ||
        short_read) {
      if (rfd >= 0) ::close(rfd);
      ::close(fd.value());
      return Status::Internal("WAL header vanished during open: " + path);
    }
    ::close(rfd);
  }
  w.payload_size_ = hdr.payload_size;
  w.stats_.base_lsn = r.base_lsn;
  w.stats_.last_lsn = r.last_lsn;
  // The valid prefix is on disk; whether it was fsync'd by the previous
  // process is unknowable, so sync once now to make the baseline durable.
  if (::fdatasync(fd.value()) != 0) {
    const Status st = Status::Internal(Errno("fdatasync " + path));
    ::close(fd.value());
    return st;
  }
  w.stats_.last_synced_lsn = r.last_lsn;
  w.last_sync_ns_ = NowNs();
  return w;
}

Result<uint64_t> WalWriter::Append(WalRecordType type, const void* payload,
                                   size_t len) {
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer not open");
  if (!io_error_.ok()) return io_error_;
  if (len > kMaxWalPayload) {
    return Status::InvalidArgument("WAL payload too large");
  }
  if (payload_size_ != 0 && len != payload_size_) {
    return Status::InvalidArgument("WAL payload size mismatch");
  }

  WalRecordHeader rec;
  rec.len = static_cast<uint32_t>(len);
  rec.lsn = stats_.last_lsn + 1;
  rec.type = static_cast<uint32_t>(type);
  rec.crc = rec.ComputeCrc(payload);

  // One write() per record: a crash mid-call tears at most this record,
  // which replay then drops as an invalid tail.
  uint8_t stack_buf[sizeof(rec) + 64];
  std::vector<uint8_t> heap_buf;
  uint8_t* buf = stack_buf;
  const size_t total = sizeof(rec) + len;
  if (total > sizeof(stack_buf)) {
    heap_buf.resize(total);
    buf = heap_buf.data();
  }
  std::memcpy(buf, &rec, sizeof(rec));
  if (len > 0) std::memcpy(buf + sizeof(rec), payload, len);

  const Status st = backend_->Write(fd_, buf, total);
  if (!st.ok()) {
    // A failed append poisons the log: we cannot know how much of the
    // frame landed, so no further record may be appended after it.
    io_error_ = st;
    return st;
  }
  stats_.last_lsn = rec.lsn;
  ++stats_.appends;
  stats_.bytes_appended += total;
  ++appends_since_sync_;

  bool want_sync =
      cfg_.fsync_every_n != 0 && appends_since_sync_ >= cfg_.fsync_every_n;
  if (!want_sync && cfg_.fsync_interval_us != 0) {
    want_sync = NowNs() - last_sync_ns_ >=
                static_cast<int64_t>(cfg_.fsync_interval_us) * 1000;
  }
  if (want_sync) LI_RETURN_IF_ERROR(Sync());
  return rec.lsn;
}

Status WalWriter::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer not open");
  if (!io_error_.ok()) return io_error_;
  if (stats_.last_synced_lsn == stats_.last_lsn) {
    last_sync_ns_ = NowNs();
    return Status::OK();  // group-commit window is empty
  }
  const Status st = backend_->Sync(fd_);
  if (!st.ok()) {
    io_error_ = st;
    return st;
  }
  stats_.last_synced_lsn = stats_.last_lsn;
  ++stats_.syncs;
  appends_since_sync_ = 0;
  last_sync_ns_ = NowNs();
  return Status::OK();
}

Status WalWriter::ResetTo(uint64_t covered) {
  if (fd_ < 0) return Status::FailedPrecondition("WAL writer not open");
  if (!io_error_.ok()) return io_error_;
  if (covered < stats_.base_lsn) {
    return Status::OK();  // log already starts after the watermark
  }

  // Collect the tail that outlives the snapshot (records the snapshot
  // does not cover). Appends are serialized by the caller, so the file
  // is stable during this scan.
  std::vector<uint8_t> tail;
  auto replay = Replay(
      path_,
      [&](WalRecordType type, uint64_t lsn, const void* payload,
          size_t len) -> Status {
        if (lsn <= covered) return Status::OK();
        WalRecordHeader rec;
        rec.len = static_cast<uint32_t>(len);
        rec.lsn = lsn;
        rec.type = static_cast<uint32_t>(type);
        rec.crc = rec.ComputeCrc(payload);
        const size_t at = tail.size();
        tail.resize(at + sizeof(rec) + len);
        std::memcpy(tail.data() + at, &rec, sizeof(rec));
        if (len > 0) std::memcpy(tail.data() + at + sizeof(rec), payload, len);
        return Status::OK();
      });
  if (!replay.ok()) return replay.status();

  WalFileHeader hdr;
  hdr.base_lsn = covered;
  hdr.payload_size = payload_size_;
  hdr.header_crc = hdr.ComputeCrc();
  // Atomic rotation: the rename is the commit point. A crash before it
  // leaves the old (longer) log — recovery filters by covered LSN; a
  // crash after it leaves the new log with the carried tail. Both valid.
  LI_RETURN_IF_ERROR(
      PublishHeaderFile(path_, hdr, tail.data(), tail.size()));

  auto fd = OpenAppendFd(path_);
  if (!fd.ok()) {
    io_error_ = fd.status();
    return fd.status();
  }
  ::close(fd_);
  fd_ = fd.value();
  stats_.base_lsn = covered;
  if (stats_.last_lsn < covered) stats_.last_lsn = covered;
  stats_.last_synced_lsn = stats_.last_lsn;  // rotation fsyncs everything
  ++stats_.resets;
  appends_since_sync_ = 0;
  last_sync_ns_ = NowNs();
  return Status::OK();
}

}  // namespace li::wal
