#include "wal/file_backend.h"

#include <algorithm>
#include <cstring>
#include <string>

#include <errno.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

namespace li::wal {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

Status FullWrite(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  size_t left = n;
  while (left > 0) {
    const ssize_t w = ::write(fd, p, left);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("write"));
    }
    p += w;
    left -= static_cast<size_t>(w);
  }
  return Status::OK();
}

uint64_t FileSize(int fd) {
  struct stat st;
  if (::fstat(fd, &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

class RealFileBackend final : public FileBackend {
 public:
  Status Write(int fd, const void* data, size_t n) override {
    return FullWrite(fd, data, n);
  }
  Status Sync(int fd) override {
    if (::fdatasync(fd) != 0) return Status::Internal(Errno("fdatasync"));
    return Status::OK();
  }
};

}  // namespace

FileBackend* DefaultFileBackend() {
  static RealFileBackend backend;
  return &backend;
}

uint64_t CrashFileBackend::SyncedSize(int fd) {
  auto it = synced_size_.find(fd);
  if (it == synced_size_.end()) {
    // First sight of this fd: its current content was created by
    // Create/rotation, which fsync before publishing — treat as durable.
    it = synced_size_.emplace(fd, FileSize(fd)).first;
  }
  // Clamp: after a rotation the fd number may be reused for a shorter
  // file; never "truncate" upward past what actually exists.
  return std::min(it->second, FileSize(fd));
}

Status CrashFileBackend::Crash(int fd, bool truncate_to_synced) {
  crashed_ = true;
  if (truncate_to_synced) {
    // Drop the un-synced tail: everything written since the last
    // successful Sync is lost, as if the OS never flushed those pages.
    (void)::ftruncate(fd, static_cast<off_t>(SyncedSize(fd)));
  }
  if (plan_.kill_process) {
    // SIGKILL self: no atexit handlers, no stream flushes, worker
    // threads die mid-step — the honest crash the harness wants.
    ::kill(::getpid(), SIGKILL);
    ::pause();  // unreachable
  }
  return Status::Internal("injected crash");
}

Status CrashFileBackend::Write(int fd, const void* data, size_t n) {
  if (crashed_) return Status::Internal("injected crash (log is dead)");
  SyncedSize(fd);  // adopt pre-existing content before the first append
  ++writes_;
  if (plan_.trigger_at != 0 && writes_ == plan_.trigger_at) {
    switch (plan_.mode) {
      case Mode::kNone:
      case Mode::kDropBeforeSync:  // sync-triggered; write normally
        break;
      case Mode::kBeforeWrite:
        return Crash(fd, false);
      case Mode::kTornWrite: {
        const size_t torn = std::min(plan_.torn_bytes, n);
        (void)FullWrite(fd, data, torn);
        return Crash(fd, false);
      }
      case Mode::kDropTail:
        (void)FullWrite(fd, data, n);
        return Crash(fd, true);
      case Mode::kAfterWrite: {
        LI_RETURN_IF_ERROR(FullWrite(fd, data, n));
        return Crash(fd, false);
      }
    }
  }
  return FullWrite(fd, data, n);
}

Status CrashFileBackend::Sync(int fd) {
  if (crashed_) return Status::Internal("injected crash (log is dead)");
  ++syncs_;
  if (plan_.mode == Mode::kDropBeforeSync && plan_.trigger_at != 0 &&
      syncs_ == plan_.trigger_at) {
    // The crash lands "mid-fsync": the caller asked for durability but
    // the un-synced tail never reached the platter.
    return Crash(fd, true);
  }
  if (::fdatasync(fd) != 0) return Status::Internal(Errno("fdatasync"));
  synced_size_[fd] = FileSize(fd);
  return Status::OK();
}

}  // namespace li::wal
