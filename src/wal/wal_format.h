// On-disk write-ahead-log format: a fixed 64-byte file header followed
// by a stream of length-prefixed, CRC-32C-framed records with strictly
// monotonic LSNs. The format is torn-write-safe by construction — every
// record is written with a single write() call and carries a checksum
// over its header fields and payload, so replay can stop cleanly at the
// first record that fails validation (a torn tail after a crash) without
// ever interpreting garbage bytes. Integrity layering mirrors the
// snapshot format (docs/PERSISTENCE.md); the recovery protocol that
// consumes this format is described in docs/DURABILITY.md.
//
// All integers are little-endian, as with src/snapshot/format.h.

#ifndef LI_WAL_WAL_FORMAT_H_
#define LI_WAL_WAL_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "snapshot/crc32c.h"

namespace li::wal {

/// "LIWAL001" interpreted as a little-endian u64 — distinct from the
/// snapshot magic so tools/snapshot_inspect can auto-detect which of the
/// two on-disk formats it was handed.
inline constexpr uint64_t kWalMagic = 0x3130'304C'4157'494CULL;

inline constexpr uint32_t kWalFormatVersion = 1;

/// Upper bound on a record payload. Real payloads are key-sized (8-16
/// bytes today); the cap exists so a corrupt length prefix can never
/// drive a multi-gigabyte allocation during replay.
inline constexpr uint32_t kMaxWalPayload = 1u << 20;

/// File header, 64 bytes. Written once (atomically, via tmp+rename) when
/// the log is created or rotated; records follow immediately after.
struct WalFileHeader {
  uint64_t magic = kWalMagic;
  uint32_t version = kWalFormatVersion;
  uint32_t payload_size = 0;  // fixed payload bytes per record; 0 = varied
  uint64_t base_lsn = 0;      // records in this file have lsn > base_lsn
  uint32_t header_crc = 0;    // CRC-32C of this struct with header_crc = 0
  uint8_t reserved[36] = {};

  uint32_t ComputeCrc() const {
    WalFileHeader tmp = *this;
    tmp.header_crc = 0;
    return snapshot::Crc32c(&tmp, sizeof(tmp));
  }
};
static_assert(sizeof(WalFileHeader) == 64, "WAL header layout is frozen");

/// Record kinds. Values are part of the on-disk format.
enum class WalRecordType : uint32_t {
  kInsert = 1,
  kErase = 2,
};

inline const char* WalRecordTypeName(WalRecordType t) {
  switch (t) {
    case WalRecordType::kInsert: return "insert";
    case WalRecordType::kErase: return "erase";
  }
  return "?";
}

/// Per-record frame, 24 bytes, immediately followed by `len` payload
/// bytes. `crc` covers bytes [4, 24) of the header plus the payload, so
/// any torn or bit-flipped record fails validation as a unit.
struct WalRecordHeader {
  uint32_t crc = 0;
  uint32_t len = 0;   // payload bytes
  uint64_t lsn = 0;   // strictly monotonic: previous record's lsn + 1
  uint32_t type = 0;  // WalRecordType
  uint32_t reserved = 0;

  uint32_t ComputeCrc(const void* payload) const {
    const uint8_t* self = reinterpret_cast<const uint8_t*>(this);
    uint32_t c = snapshot::Crc32c(self + sizeof(crc), sizeof(*this) - sizeof(crc));
    return snapshot::Crc32c(payload, len, c);
  }
};
static_assert(sizeof(WalRecordHeader) == 24, "WAL record layout is frozen");

}  // namespace li::wal

#endif  // LI_WAL_WAL_FORMAT_H_
