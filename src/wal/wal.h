// Write-ahead log: append-only record stream with monotonic LSNs,
// CRC-32C-per-record framing (wal_format.h) and group-commit fsync
// batching. The durability contract this implements:
//
//   * Append() returns only after the record bytes reached the file
//     (one write() per record) and, when the group-commit policy fired,
//     after fdatasync — so an acknowledged write survives process death
//     unconditionally and survives OS death up to the configured sync
//     policy.
//   * Replay() walks the log validating each frame (CRC, length bound,
//     strict lsn continuity) and stops cleanly at the first invalid
//     record: a torn tail yields the longest valid prefix and a clean
//     Status, never UB.
//   * ResetTo(covered) truncates the log behind a snapshot: records with
//     lsn <= covered are dropped by atomically rotating to a fresh file
//     (tmp + fsync + rename) that carries over any newer tail records.
//     A crash at any point leaves either the old or the new log, both
//     valid.
//
// Index classes wire this in via DurabilityConfig (EnableDurability /
// RecoverFromWal in src/dynamic/ and src/concurrent/); the protocol is
// documented in docs/DURABILITY.md.

#ifndef LI_WAL_WAL_H_
#define LI_WAL_WAL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "wal/file_backend.h"
#include "wal/wal_format.h"

namespace li::wal {

/// Group-commit + placement knobs, shared by every durable index class.
struct DurabilityConfig {
  /// WAL file path for single-log classes (DeltaRangeIndex,
  /// ConcurrentWritableIndex); directory for ShardedIndex, which routes
  /// per-shard logs (s<uid>.wal) plus per-shard snapshots beneath it.
  std::string path;
  /// fdatasync after every n-th appended record; 1 = sync-on-ack
  /// (strongest: acknowledged implies on-platter), 0 = never sync
  /// (page-cache durability only — survives SIGKILL, not power loss).
  size_t fsync_every_n = 1;
  /// Additionally sync when this much time passed since the last sync,
  /// checked at append time; 0 disables the timer.
  uint64_t fsync_interval_us = 0;
  /// I/O layer; nullptr = DefaultFileBackend(). Crash tests inject
  /// CrashFileBackend here.
  FileBackend* backend = nullptr;
};

/// Counters exposed through the index classes' DurabilityStats().
struct WalStats {
  uint64_t appends = 0;
  uint64_t syncs = 0;
  uint64_t resets = 0;          // truncation rotations
  uint64_t bytes_appended = 0;  // record bytes, excluding file headers
  uint64_t last_lsn = 0;        // last acknowledged record
  uint64_t last_synced_lsn = 0; // last record covered by an fdatasync
  uint64_t base_lsn = 0;        // current file's truncation watermark
};

/// POD persisted by durable index classes inside their snapshots (a
/// "<prefix>wal" section): the LSN watermark the snapshot covers.
/// Recovery replays only records past it.
struct WalSnapshotMeta {
  uint64_t covered_lsn = 0;
};
static_assert(sizeof(WalSnapshotMeta) == 8, "persisted verbatim");

/// Outcome of scanning a log file (Replay / WalWriter::Open).
struct WalReplayResult {
  uint64_t base_lsn = 0;
  uint64_t last_lsn = 0;   // == base_lsn when the file has no records
  uint64_t records = 0;
  bool torn_tail = false;  // stopped before EOF at an invalid record
  uint64_t valid_bytes = 0;  // offset just past the last valid record
  uint64_t file_bytes = 0;
};

/// Visitor for Replay: (type, lsn, payload, payload_len). A non-OK
/// return aborts the scan and is surfaced to the caller.
using WalRecordFn =
    std::function<Status(WalRecordType, uint64_t, const void*, size_t)>;

/// Scan `path`, invoking `fn` for each valid record in order. Stops
/// cleanly at the first invalid record (torn/corrupt tail) — that is an
/// OK outcome reported via WalReplayResult::torn_tail, not an error. A
/// missing file is kNotFound; an unreadable header (wrong magic/version
/// or header CRC mismatch) is kInvalidArgument, since nothing after it
/// can be trusted. `fn` may be null (pure validation scan).
Result<WalReplayResult> Replay(const std::string& path, const WalRecordFn& fn);

/// Single-file append handle. Not thread-safe: callers serialize appends
/// (the concurrent classes append under their writer mutex, which also
/// makes LSN order identical to write acknowledgement order).
class WalWriter {
 public:
  WalWriter() = default;  // empty shell; only assignment revives it
  ~WalWriter();
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Create a fresh log at `path` (atomically replacing any previous
  /// file) whose records will start at base_lsn + 1.
  static Result<WalWriter> Create(const std::string& path, uint64_t base_lsn,
                                  uint32_t payload_size,
                                  const DurabilityConfig& cfg);

  /// Open an existing log for appending. Scans the file first (same
  /// validation as Replay), truncates a torn tail so new records land on
  /// a valid boundary, and resumes LSNs after the last valid record.
  /// `scan` receives the scan outcome when non-null.
  static Result<WalWriter> Open(const std::string& path,
                                const DurabilityConfig& cfg,
                                WalReplayResult* scan);

  bool valid() const { return fd_ >= 0; }

  /// Append one record; returns its LSN. The record is acknowledged once
  /// written; the group-commit policy decides whether this call also
  /// pays the fdatasync.
  Result<uint64_t> Append(WalRecordType type, const void* payload,
                          size_t len);

  /// Force an fdatasync now (flushes the group-commit window).
  Status Sync();

  /// Truncate-behind: rotate to a fresh file whose base_lsn is
  /// `covered`, carrying over records with lsn > covered. Called after a
  /// snapshot publishing `covered` succeeds.
  Status ResetTo(uint64_t covered);

  const WalStats& stats() const { return stats_; }
  const std::string& path() const { return path_; }

 private:
  void Close();

  std::string path_;
  int fd_ = -1;
  DurabilityConfig cfg_;
  FileBackend* backend_ = nullptr;  // resolved from cfg_
  uint32_t payload_size_ = 0;
  WalStats stats_;
  uint64_t appends_since_sync_ = 0;
  int64_t last_sync_ns_ = 0;  // steady-clock; interval-based group commit
  Status io_error_;           // sticky: a failed append poisons the log
};

}  // namespace li::wal

#endif  // LI_WAL_WAL_H_
