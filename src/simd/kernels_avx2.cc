// AVX2 kernel table: 4 x 64-bit lanes. Compiled with -mavx2 -mfma via
// per-file CMake flags; the whole TU degrades to a nullptr registration if
// those ISAs are unavailable at compile time (non-x86 or flag-check
// failure), and dispatch.cc then never selects this level.
//
// Bit-exactness: each kernel replays the scalar spec's IEEE operation
// sequence lane-wise — vfmadd ≡ std::fma, vroundpd(floor) ≡ std::floor,
// max/min in the same order — so outputs are identical to kernels_scalar.
// AVX2 has no pd→epu64 conversion; predictions are clamped in the double
// domain first and converted with the 2^52 mantissa-aliasing trick, which
// is exact for the clamped range (max_pos >= 2^52 falls back to the scalar
// loop — no real array is that large). The uint64→double conversion uses
// the two-halves magic-constant method, which is exactly rounded over the
// full 64-bit range.

#include <cstddef>
#include <cstdint>

#include "common/bits.h"
#include "simd/dispatch.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace li::simd {
namespace {

constexpr double kTwo52 = 0x1.0p52;
constexpr double kTwo84 = 0x1.0p84;
constexpr double kTwo84Plus52 = 0x1.0p84 + 0x1.0p52;

// Exactly-rounded uint64 -> double over the full range (two-halves
// method: hi*2^32 and lo recombined with one rounding addition).
inline __m256d U64ToF64(__m256i v) {
  const __m256i magic_lo = _mm256_castpd_si256(_mm256_set1_pd(kTwo52));
  const __m256i magic_hi = _mm256_castpd_si256(_mm256_set1_pd(kTwo84));
  const __m256i lo = _mm256_blend_epi32(magic_lo, v, 0b01010101);
  const __m256i hi =
      _mm256_xor_si256(_mm256_srli_epi64(v, 32), magic_hi);
  const __m256d hi_d =
      _mm256_sub_pd(_mm256_castsi256_pd(hi), _mm256_set1_pd(kTwo84Plus52));
  return _mm256_add_pd(hi_d, _mm256_castsi256_pd(lo));
}

// Integer-valued doubles in [0, 2^52) -> uint64 via mantissa aliasing.
inline __m256i F64ToU64Small(__m256d r) {
  const __m256d magic = _mm256_set1_pd(kTwo52);
  return _mm256_sub_epi64(_mm256_castpd_si256(_mm256_add_pd(r, magic)),
                          _mm256_castpd_si256(magic));
}

// 64x64 -> low 64 multiply from 32-bit partial products.
inline __m256i MulLo64(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b),
                                         _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

// 64x64 -> high 64 multiply (the multiply-shift slot reduction). Partial
// products with an explicit carry chain; no intermediate overflows.
inline __m256i MulHi64v(__m256i a, __m256i m) {
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFll);
  const __m256i ah = _mm256_srli_epi64(a, 32);
  const __m256i mh = _mm256_srli_epi64(m, 32);
  const __m256i t = _mm256_srli_epi64(_mm256_mul_epu32(a, m), 32);
  const __m256i u = _mm256_add_epi64(_mm256_mul_epu32(ah, m), t);
  const __m256i v = _mm256_add_epi64(_mm256_mul_epu32(a, mh),
                                     _mm256_and_si256(u, mask32));
  return _mm256_add_epi64(
      _mm256_add_epi64(_mm256_mul_epu32(ah, mh), _mm256_srli_epi64(u, 32)),
      _mm256_srli_epi64(v, 32));
}

inline __m256i Fmix64v(__m256i k) {
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  k = MulLo64(k, _mm256_set1_epi64x(
                     static_cast<long long>(0xff51afd7ed558ccdULL)));
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  k = MulLo64(k, _mm256_set1_epi64x(
                     static_cast<long long>(0xc4ceb9fe1a85ec53ULL)));
  return _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
}

void RouteAvx2(const double* xs, size_t n, double slope, double intercept,
               double factor, uint32_t max_leaf, uint32_t* leaves) {
  if (max_leaf >= 0x7FFFFFFFu) {  // cvttpd_epi32 is signed; never in practice
    for (size_t i = 0; i < n; ++i) {
      leaves[i] = ScalarRoute1(xs[i], slope, intercept, factor, max_leaf);
    }
    return;
  }
  const __m256d vs = _mm256_set1_pd(slope);
  const __m256d vi = _mm256_set1_pd(intercept);
  const __m256d vf = _mm256_set1_pd(factor);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d cap = _mm256_set1_pd(static_cast<double>(max_leaf));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(xs + i);
    __m256d s = _mm256_mul_pd(_mm256_fmadd_pd(vs, x, vi), vf);
    s = _mm256_max_pd(s, zero);  // NaN and non-positive -> 0 (maxpd: src2)
    s = _mm256_min_pd(s, cap);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(leaves + i),
                     _mm256_cvttpd_epi32(s));
  }
  for (; i < n; ++i) {
    leaves[i] = ScalarRoute1(xs[i], slope, intercept, factor, max_leaf);
  }
}

void PredictRunAvx2(const double* xs, size_t n, double slope,
                    double intercept, uint64_t max_pos, uint64_t* pos) {
  if (max_pos >= (uint64_t{1} << 52)) {  // mantissa-alias range guard
    for (size_t i = 0; i < n; ++i) {
      pos[i] = ScalarPredict1(xs[i], slope, intercept, max_pos);
    }
    return;
  }
  const __m256d vs = _mm256_set1_pd(slope);
  const __m256d vi = _mm256_set1_pd(intercept);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d cap = _mm256_set1_pd(static_cast<double>(max_pos));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(xs + i);
    __m256d p = _mm256_fmadd_pd(vs, x, vi);
    p = _mm256_max_pd(p, zero);  // NaN and non-positive -> 0
    __m256d r = _mm256_floor_pd(_mm256_add_pd(p, half));
    r = _mm256_min_pd(r, cap);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(pos + i),
                        F64ToU64Small(r));
  }
  for (; i < n; ++i) {
    pos[i] = ScalarPredict1(xs[i], slope, intercept, max_pos);
  }
}

constexpr size_t kScanWidth = 64;  // same handoff width as every level

// Horizontal sum of four 64-bit lanes (the compare-accumulator reduction).
inline size_t HSum4(__m256i acc) {
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(acc),
                                  _mm256_extracti128_si256(acc, 1));
  return static_cast<size_t>(_mm_cvtsi128_si64(s)) +
         static_cast<size_t>(_mm_extract_epi64(s, 1));
}

size_t LowerBoundU64Avx2(const uint64_t* data, size_t lo, size_t hi,
                         uint64_t key) {
  while (hi - lo > kScanWidth) {
    const size_t mid = lo + (hi - lo) / 2;
    const bool lt = data[mid] < key;
    lo = lt ? mid + 1 : lo;
    hi = lt ? hi : mid;
  }
  // Compare-and-popcount sweep: count elements < key (signed compare
  // after a sign flip).
  const __m256i off = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  const __m256i vkey = _mm256_xor_si256(_mm256_set1_epi64x(
                                            static_cast<long long>(key)),
                                        off);
  __m256i acc = _mm256_setzero_si256();
  size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i)), off);
    // A true lane is all-ones (-1); subtracting accumulates per-lane
    // counts with no movemask/popcount in the loop.
    acc = _mm256_sub_epi64(acc, _mm256_cmpgt_epi64(vkey, v));
  }
  size_t count = HSum4(acc);
  for (; i < hi; ++i) count += static_cast<size_t>(data[i] < key);
  return lo + count;
}

size_t LowerBoundF64Avx2(const double* data, size_t lo, size_t hi,
                         double key) {
  while (hi - lo > kScanWidth) {
    const size_t mid = lo + (hi - lo) / 2;
    const bool lt = data[mid] < key;
    lo = lt ? mid + 1 : lo;
    hi = lt ? hi : mid;
  }
  const __m256d vkey = _mm256_set1_pd(key);
  __m256i acc = _mm256_setzero_si256();
  size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m256d v = _mm256_loadu_pd(data + i);
    // _CMP_LT_OQ: ordered quiet — NaN compares false, same as scalar <.
    const __m256d lt = _mm256_cmp_pd(v, vkey, _CMP_LT_OQ);
    acc = _mm256_sub_epi64(acc, _mm256_castpd_si256(lt));
  }
  size_t count = HSum4(acc);
  for (; i < hi; ++i) count += static_cast<size_t>(data[i] < key);
  return lo + count;
}

size_t UpperBoundU64Avx2(const uint64_t* data, size_t lo, size_t hi,
                         uint64_t key) {
  while (hi - lo > kScanWidth) {
    const size_t mid = lo + (hi - lo) / 2;
    const bool le = data[mid] <= key;
    lo = le ? mid + 1 : lo;
    hi = le ? hi : mid;
  }
  const __m256i off = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  const __m256i vkey = _mm256_xor_si256(_mm256_set1_epi64x(
                                            static_cast<long long>(key)),
                                        off);
  __m256i acc = _mm256_setzero_si256();
  size_t i = lo;
  size_t blocks = 0;
  for (; i + 4 <= hi; i += 4, ++blocks) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i)), off);
    acc = _mm256_sub_epi64(acc, _mm256_cmpgt_epi64(v, vkey));  // data > key
  }
  size_t count = 4 * blocks - HSum4(acc);
  for (; i < hi; ++i) count += static_cast<size_t>(data[i] <= key);
  return lo + count;
}

void LowerBoundU64MultiAvx2(const uint64_t* data, const size_t* lo,
                             const size_t* hi, const uint64_t* keys, size_t n,
                             size_t* out) {
  for (size_t k = 0; k < n; ++k) {
    out[k] = LowerBoundU64Avx2(data, lo[k], hi[k], keys[k]);
  }
}

void LowerBoundF64MultiAvx2(const double* data, const size_t* lo,
                             const size_t* hi, const double* keys, size_t n,
                             size_t* out) {
  for (size_t k = 0; k < n; ++k) {
    out[k] = LowerBoundF64Avx2(data, lo[k], hi[k], keys[k]);
  }
}

void U64ToF64Avx2(const uint64_t* keys, size_t n, double* xs) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    _mm256_storeu_pd(xs + i, U64ToF64(v));
  }
  for (; i < n; ++i) xs[i] = static_cast<double>(keys[i]);
}

void HashSlotsAvx2(const uint64_t* keys, size_t n, uint64_t seed,
                   uint64_t num_slots, uint64_t* slots) {
  const __m256i vseed = _mm256_set1_epi64x(static_cast<long long>(seed));
  const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(num_slots));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i k = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)),
        vseed);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(slots + i),
                        MulHi64v(Fmix64v(k), vm));
  }
  for (; i < n; ++i) slots[i] = ScalarHashSlot(keys[i], seed, num_slots);
}

void CuckooSlotsAvx2(const uint64_t* keys, size_t n, uint64_t seed,
                     uint64_t num_buckets, uint64_t* b1, uint64_t* b2) {
  const __m256i vseed = _mm256_set1_epi64x(static_cast<long long>(seed));
  const __m256i vadd = _mm256_set1_epi64x(
      static_cast<long long>(0x9e3779b97f4a7c15ULL + seed));
  const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(num_buckets));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(b1 + i),
        MulHi64v(Fmix64v(_mm256_xor_si256(k, vseed)), vm));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(b2 + i),
        MulHi64v(Fmix64v(_mm256_add_epi64(k, vadd)), vm));
  }
  for (; i < n; ++i) {
    ScalarCuckooSlots(keys[i], seed, num_buckets, &b1[i], &b2[i]);
  }
}

}  // namespace

const Kernels* Avx2Kernels() {
  static const Kernels kTable = {
      "avx2",          RouteAvx2,        PredictRunAvx2,
      LowerBoundU64Avx2, LowerBoundF64Avx2, UpperBoundU64Avx2,
      LowerBoundU64MultiAvx2, LowerBoundF64MultiAvx2,
      U64ToF64Avx2,    HashSlotsAvx2,    CuckooSlotsAvx2,
  };
  return &kTable;
}

}  // namespace li::simd

#else  // !(__AVX2__ && __FMA__)

namespace li::simd {
const Kernels* Avx2Kernels() { return nullptr; }
}  // namespace li::simd

#endif
