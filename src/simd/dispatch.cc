// Dispatch state: CPU detection, the level table, env + programmatic
// overrides. See dispatch.h for the contract.

#include "simd/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace li::simd {

// Defined in the per-level kernel TUs. The vector levels return nullptr
// when their TU was compiled without the ISA enabled (non-x86 target or a
// toolchain lacking the flags).
const Kernels& ScalarKernels();
const Kernels* Avx2Kernels();
const Kernels* Avx512Kernels();

namespace {

bool CpuHasAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq");
#else
  return false;
#endif
}

// Best supported level, resolved once. The LI_SIMD_LEVEL environment
// override ("scalar" | "avx2" | "avx512") is also read here; an override
// that cannot take effect is ignored rather than crashing, so a stale
// env var cannot take a deployment down — but the fallback is announced
// once on stderr (a silently ignored override reads as a benchmarking
// lie). Accepted values are documented in docs/SIMD.md.
Level ResolveStartupLevel(bool apply_env) {
  Level best = Level::kScalar;
  if (Avx2Kernels() != nullptr && CpuHasAvx2Fma()) best = Level::kAvx2;
  if (Avx512Kernels() != nullptr && CpuHasAvx512()) best = Level::kAvx512;
  if (!apply_env) return best;
  const char* env = std::getenv("LI_SIMD_LEVEL");
  if (env == nullptr || *env == '\0') return best;
  if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
  if (std::strcmp(env, "avx2") == 0) {
    if (Avx2Kernels() != nullptr && CpuHasAvx2Fma()) return Level::kAvx2;
    std::fprintf(stderr,
                 "li/simd: LI_SIMD_LEVEL=avx2 requested but AVX2 is not "
                 "available in this build/CPU; using %s\n",
                 LevelName(best));
    return best;
  }
  if (std::strcmp(env, "avx512") == 0) {
    if (Avx512Kernels() != nullptr && CpuHasAvx512()) return Level::kAvx512;
    std::fprintf(stderr,
                 "li/simd: LI_SIMD_LEVEL=avx512 requested but AVX-512 is "
                 "not available in this build/CPU; using %s\n",
                 LevelName(best));
    return best;
  }
  std::fprintf(stderr,
               "li/simd: unknown LI_SIMD_LEVEL value '%s' (accepted: "
               "\"scalar\", \"avx2\", \"avx512\"); using %s\n",
               env, LevelName(best));
  return best;
}

Level StartupLevel() {
  static const Level level = ResolveStartupLevel(/*apply_env=*/true);
  return level;
}

// -1 = no pin; otherwise the forced Level value.
std::atomic<int> g_forced{-1};

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
    case Level::kAvx512: return "avx512";
  }
  return "unknown";
}

const Kernels& KernelsFor(Level level) {
  switch (level) {
    case Level::kAvx512:
      if (const Kernels* k = Avx512Kernels(); k && CpuHasAvx512()) return *k;
      break;
    case Level::kAvx2:
      if (const Kernels* k = Avx2Kernels(); k && CpuHasAvx2Fma()) return *k;
      break;
    case Level::kScalar:
      break;
  }
  return ScalarKernels();
}

Level ActiveLevel() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Level>(forced);
  return StartupLevel();
}

const Kernels& GetKernels() { return KernelsFor(ActiveLevel()); }

Level DetectedLevel() {
  static const Level level = ResolveStartupLevel(/*apply_env=*/false);
  return level;
}

bool LevelCompiled(Level level) {
  switch (level) {
    case Level::kScalar: return true;
    case Level::kAvx2: return Avx2Kernels() != nullptr;
    case Level::kAvx512: return Avx512Kernels() != nullptr;
  }
  return false;
}

bool LevelSupported(Level level) {
  switch (level) {
    case Level::kScalar: return true;
    case Level::kAvx2: return Avx2Kernels() != nullptr && CpuHasAvx2Fma();
    case Level::kAvx512: return Avx512Kernels() != nullptr && CpuHasAvx512();
  }
  return false;
}

Status ForceLevel(Level level) {
  if (!LevelSupported(level)) {
    return Status::InvalidArgument(
        std::string("SIMD level '") + LevelName(level) +
        "' is not supported on this machine/build");
  }
  g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
  return Status::OK();
}

void ClearForcedLevel() { g_forced.store(-1, std::memory_order_relaxed); }

bool IsForced() { return g_forced.load(std::memory_order_relaxed) >= 0; }

CpuFeatures DetectCpu() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  f.avx2 = __builtin_cpu_supports("avx2");
  f.fma = __builtin_cpu_supports("fma");
  f.avx512f = __builtin_cpu_supports("avx512f");
  f.avx512dq = __builtin_cpu_supports("avx512dq");
#endif
  return f;
}

}  // namespace li::simd
