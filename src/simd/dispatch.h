// Runtime SIMD dispatch for the model-execution hot paths.
//
// The paper's "model is the index" claim lives on predict throughput, so
// the batched inner loops (top-model routing, leaf linear predict, the
// bounded last-mile search, and learned/random hash slot computation) are
// implemented as data-parallel kernels at three ISA levels:
//
//   * scalar   — always compiled; the reference semantics.
//   * avx2     — 4 x 64-bit lanes (requires AVX2 + FMA).
//   * avx512   — 8 x 64-bit lanes (requires AVX-512 F + DQ).
//
// One `Kernels` table of function pointers per level; `GetKernels()`
// returns the table for the active level, chosen at first use from CPUID
// (plus the optional `LI_SIMD_LEVEL` environment override) and overridable
// programmatically via `ForceLevel` for conformance tests and per-level
// benchmarks. Kernel translation units are compiled with explicit
// per-file `-mavx2` / `-mavx512f` flags (see CMakeLists), so dispatch
// works even in portable `LI_NATIVE_ARCH=OFF` builds.
//
// Bit-exactness contract: every kernel implements the scalar reference
// spec below (`ScalarRoute1` / `ScalarPredict1` / `ScalarHashSlot` / ...)
// with the same IEEE-754 operation sequence — explicit fma, floor, min —
// so all levels produce identical outputs for identical inputs. This is
// load-bearing: hash maps compute home slots during Build with the scalar
// spec and must find the same slots from the vectorized FindBatch, and the
// kernel conformance suite (tests/simd_kernel_test.cc) asserts agreement
// across levels on edge inputs. See docs/SIMD.md.

#ifndef LI_SIMD_DISPATCH_H_
#define LI_SIMD_DISPATCH_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/random.h"
#include "common/status.h"

namespace li::simd {

enum class Level : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};
inline constexpr int kNumLevels = 3;

const char* LevelName(Level level);

/// The kernel table: one entry per vectorizable hot-path primitive. All
/// pointers are always non-null (a level's table falls back to the scalar
/// implementation for any kernel it does not specialize).
struct Kernels {
  const char* name;

  /// Top-model routing over a feature batch:
  ///   leaves[i] = min((uint32)max(fma(slope, xs[i], intercept) * factor,
  ///                   0), max_leaf)
  /// with NaN / non-positive products routed to leaf 0 (the scalar
  /// `!(x > 0)` escape). `factor` is the precomputed M/N rescale.
  void (*route)(const double* xs, size_t n, double slope, double intercept,
                double factor, uint32_t max_leaf, uint32_t* leaves);

  /// Leaf linear predict over a run of keys sharing one model:
  ///   pos[i] = min((uint64)floor(max(fma(slope, xs[i], intercept), 0)
  ///                 + 0.5), max_pos)
  /// — round-to-nearest with the paper's +0.5 bias (§4.2), clamped.
  void (*predict_run)(const double* xs, size_t n, double slope,
                      double intercept, uint64_t max_pos, uint64_t* pos);

  /// Branchless bounded lower_bound: index of the first element >= key in
  /// sorted data[lo, hi) (== lo + count of elements < key). Wide windows
  /// are first narrowed with branch-free bisection, then swept with
  /// compare-and-popcount.
  size_t (*lower_bound_u64)(const uint64_t* data, size_t lo, size_t hi,
                            uint64_t key);
  size_t (*lower_bound_f64)(const double* data, size_t lo, size_t hi,
                            double key);

  /// Branchless bounded upper_bound over uint64 (first element > key) —
  /// the shard-boundary routing primitive.
  size_t (*upper_bound_u64)(const uint64_t* data, size_t lo, size_t hi,
                            uint64_t key);

  /// Batched bounded lower_bound: out[k] = lower bound of keys[k] within
  /// [lo[k], hi[k]), same contract as the single-key kernels. One call per
  /// block keeps the sweep inlined in the kernel TU and lets the core
  /// overlap adjacent keys' probe loads instead of serializing them behind
  /// per-key indirect calls.
  void (*lower_bound_u64_multi)(const uint64_t* data, const size_t* lo,
                                const size_t* hi, const uint64_t* keys,
                                size_t n, size_t* out);
  void (*lower_bound_f64_multi)(const double* data, const size_t* lo,
                                const size_t* hi, const double* keys,
                                size_t n, size_t* out);

  /// Exactly-rounded uint64 -> double conversion (the KeyTraits feature
  /// extraction for integer keys), bit-identical to a scalar
  /// static_cast<double> over the full 64-bit range.
  void (*u64_to_f64)(const uint64_t* keys, size_t n, double* xs);

  /// Random-hash slot batch: slots[i] = mulhi64(fmix64(keys[i] ^ seed),
  /// num_slots) — the RandomHash operator() over a batch.
  void (*hash_slots)(const uint64_t* keys, size_t n, uint64_t seed,
                     uint64_t num_slots, uint64_t* slots);

  /// Cuckoo candidate-bucket batch: b1/b2 per CuckooMap::Buckets minus the
  /// distinct-bucket fix-up (callers patch b2 == b1 scalarly).
  void (*cuckoo_slots)(const uint64_t* keys, size_t n, uint64_t seed,
                       uint64_t num_buckets, uint64_t* b1, uint64_t* b2);
};

/// The table for the active level (detected, env-overridden, or forced).
/// One relaxed atomic load per call — callers amortize it per batch.
const Kernels& GetKernels();

/// The table for a specific level; scalar fallback if that level is not
/// compiled in or the CPU lacks it.
const Kernels& KernelsFor(Level level);

/// The level `GetKernels()` currently resolves to.
Level ActiveLevel();

/// The best level this CPU supports among the compiled-in ones (ignores
/// overrides).
Level DetectedLevel();

/// True iff the level's kernel TU was compiled with its ISA enabled.
bool LevelCompiled(Level level);

/// True iff the level is compiled in AND the CPU supports it at runtime.
bool LevelSupported(Level level);

/// Testing/bench override: pin dispatch to `level`. Fails with
/// InvalidArgument if the level is unsupported on this machine/build.
Status ForceLevel(Level level);

/// Drops the `ForceLevel` pin (the LI_SIMD_LEVEL env override, if any,
/// still applies).
void ClearForcedLevel();

/// True iff a ForceLevel pin is active.
bool IsForced();

/// RAII forced-level scope for tests and per-level benchmarks.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level) : status_(ForceLevel(level)) {}
  ~ScopedLevel() {
    if (status_.ok()) ClearForcedLevel();
  }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;
  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Raw CPUID feature bits (for bench attribution — every BENCH_*.json
/// carries these so results are attributable to the level that ran).
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool avx512dq = false;
};
CpuFeatures DetectCpu();

// ---- scalar reference spec ----------------------------------------------
// The single-key forms of every FP kernel. These are THE semantics: vector
// kernels replicate this exact operation sequence lane-wise, and the RMI
// single-key path calls them so Build, Lookup, and every batch level agree
// bit-for-bit.

/// Top-model route: see Kernels::route.
inline uint32_t ScalarRoute1(double x, double slope, double intercept,
                             double factor, uint32_t max_leaf) {
  const double s = std::fma(slope, x, intercept) * factor;
  if (!(s > 0.0)) return 0;  // also catches NaN
  const double cap = static_cast<double>(max_leaf);
  return static_cast<uint32_t>(s < cap ? s : cap);
}

/// Leaf predict: see Kernels::predict_run.
inline uint64_t ScalarPredict1(double x, double slope, double intercept,
                               uint64_t max_pos) {
  const double p = std::fma(slope, x, intercept);
  if (!(p > 0.0)) return 0;  // also catches NaN
  const double r = std::floor(p + 0.5);
  const double cap = static_cast<double>(max_pos);
  const double m = r < cap ? r : cap;
  // `cap` rounds *up* to 2^64 when max_pos is at the top of the uint64
  // range, and casting that back down is UB. The AVX-512 level's
  // cvttpd_epu64 saturates out-of-range values to UINT64_MAX; match it
  // explicitly so the spec is defined (and identical) everywhere.
  if (m >= 0x1.0p64) return UINT64_MAX;
  return static_cast<uint64_t>(m);
}

/// High 64 bits of a 64x64 product — the multiply-shift slot reduction.
inline uint64_t MulHi64(uint64_t a, uint64_t b) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(a) * b) >> 64);
}

/// Random-hash slot: see Kernels::hash_slots.
inline uint64_t ScalarHashSlot(uint64_t key, uint64_t seed,
                               uint64_t num_slots) {
  return MulHi64(Murmur3Fmix64(key ^ seed), num_slots);
}

/// Cuckoo candidate buckets: see Kernels::cuckoo_slots.
inline void ScalarCuckooSlots(uint64_t key, uint64_t seed,
                              uint64_t num_buckets, uint64_t* b1,
                              uint64_t* b2) {
  *b1 = MulHi64(Murmur3Fmix64(key ^ seed), num_buckets);
  *b2 = MulHi64(Murmur3Fmix64(key + 0x9e3779b97f4a7c15ULL + seed),
                num_buckets);
}

}  // namespace li::simd

#endif  // LI_SIMD_DISPATCH_H_
