// Scalar kernel table — the reference semantics, always compiled.
//
// Every loop body is a direct call into the scalar spec functions in
// dispatch.h, so this TU *is* the bit-exactness oracle the vector levels
// are tested against. The bounded searches use branch-free bisection plus
// a counted sweep — the same structure as the vector levels — so the
// scalar fallback keeps the branchless behavior (no data-dependent
// mispredicts) even without SIMD.

#include <cstddef>
#include <cstdint>

#include "simd/dispatch.h"

namespace li::simd {
namespace {

void RouteScalar(const double* xs, size_t n, double slope, double intercept,
                 double factor, uint32_t max_leaf, uint32_t* leaves) {
  for (size_t i = 0; i < n; ++i) {
    leaves[i] = ScalarRoute1(xs[i], slope, intercept, factor, max_leaf);
  }
}

void PredictRunScalar(const double* xs, size_t n, double slope,
                      double intercept, uint64_t max_pos, uint64_t* pos) {
  for (size_t i = 0; i < n; ++i) {
    pos[i] = ScalarPredict1(xs[i], slope, intercept, max_pos);
  }
}

// Window width below which bisection hands off to the counted sweep. The
// same constant at every level so all levels do identical work shapes;
// results are exact regardless (integer counting, no FP).
constexpr size_t kScanWidth = 64;

size_t LowerBoundU64Scalar(const uint64_t* data, size_t lo, size_t hi,
                           uint64_t key) {
  while (hi - lo > kScanWidth) {
    const size_t mid = lo + (hi - lo) / 2;
    const bool lt = data[mid] < key;  // compiles to cmov, not a branch
    lo = lt ? mid + 1 : lo;
    hi = lt ? hi : mid;
  }
  size_t count = 0;
  for (size_t i = lo; i < hi; ++i) {
    count += static_cast<size_t>(data[i] < key);
  }
  return lo + count;
}

size_t LowerBoundF64Scalar(const double* data, size_t lo, size_t hi,
                           double key) {
  while (hi - lo > kScanWidth) {
    const size_t mid = lo + (hi - lo) / 2;
    const bool lt = data[mid] < key;
    lo = lt ? mid + 1 : lo;
    hi = lt ? hi : mid;
  }
  size_t count = 0;
  for (size_t i = lo; i < hi; ++i) {
    count += static_cast<size_t>(data[i] < key);
  }
  return lo + count;
}

size_t UpperBoundU64Scalar(const uint64_t* data, size_t lo, size_t hi,
                           uint64_t key) {
  while (hi - lo > kScanWidth) {
    const size_t mid = lo + (hi - lo) / 2;
    const bool le = data[mid] <= key;
    lo = le ? mid + 1 : lo;
    hi = le ? hi : mid;
  }
  size_t count = 0;
  for (size_t i = lo; i < hi; ++i) {
    count += static_cast<size_t>(data[i] <= key);
  }
  return lo + count;
}

void LowerBoundU64MultiScalar(const uint64_t* data, const size_t* lo,
                             const size_t* hi, const uint64_t* keys, size_t n,
                             size_t* out) {
  for (size_t k = 0; k < n; ++k) {
    out[k] = LowerBoundU64Scalar(data, lo[k], hi[k], keys[k]);
  }
}

void LowerBoundF64MultiScalar(const double* data, const size_t* lo,
                             const size_t* hi, const double* keys, size_t n,
                             size_t* out) {
  for (size_t k = 0; k < n; ++k) {
    out[k] = LowerBoundF64Scalar(data, lo[k], hi[k], keys[k]);
  }
}

void U64ToF64Scalar(const uint64_t* keys, size_t n, double* xs) {
  for (size_t i = 0; i < n; ++i) {
    xs[i] = static_cast<double>(keys[i]);
  }
}

void HashSlotsScalar(const uint64_t* keys, size_t n, uint64_t seed,
                     uint64_t num_slots, uint64_t* slots) {
  for (size_t i = 0; i < n; ++i) {
    slots[i] = ScalarHashSlot(keys[i], seed, num_slots);
  }
}

void CuckooSlotsScalar(const uint64_t* keys, size_t n, uint64_t seed,
                       uint64_t num_buckets, uint64_t* b1, uint64_t* b2) {
  for (size_t i = 0; i < n; ++i) {
    ScalarCuckooSlots(keys[i], seed, num_buckets, &b1[i], &b2[i]);
  }
}

}  // namespace

const Kernels& ScalarKernels() {
  static const Kernels kTable = {
      "scalar",        RouteScalar,        PredictRunScalar,
      LowerBoundU64Scalar, LowerBoundF64Scalar, UpperBoundU64Scalar,
      LowerBoundU64MultiScalar, LowerBoundF64MultiScalar,
      U64ToF64Scalar,  HashSlotsScalar,    CuckooSlotsScalar,
  };
  return kTable;
}

}  // namespace li::simd
