// AVX-512 kernel table: 8 x 64-bit lanes. Compiled with -mavx512f
// -mavx512dq via per-file CMake flags; dispatch gates this level on both
// CPUID bits (F for the 512-bit lanes and masks, DQ for the native
// uint64<->double conversions and 64-bit multiplies).
//
// Same bit-exactness contract as kernels_avx2.cc: the scalar spec's IEEE
// operation sequence, lane-wise. AVX-512DQ has native pd<->epu64
// conversions, so no mantissa-aliasing tricks or range guards are needed.

#include <cstddef>
#include <cstdint>

#include "common/bits.h"
#include "simd/dispatch.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

namespace li::simd {
namespace {

// 64x64 -> high 64 multiply from 32-bit partial products (no native
// vpmulhuq exists at any ISA level).
inline __m512i MulHi64v(__m512i a, __m512i m) {
  const __m512i mask32 = _mm512_set1_epi64(0xFFFFFFFFll);
  const __m512i ah = _mm512_srli_epi64(a, 32);
  const __m512i mh = _mm512_srli_epi64(m, 32);
  const __m512i t = _mm512_srli_epi64(_mm512_mul_epu32(a, m), 32);
  const __m512i u = _mm512_add_epi64(_mm512_mul_epu32(ah, m), t);
  const __m512i v = _mm512_add_epi64(_mm512_mul_epu32(a, mh),
                                     _mm512_and_si512(u, mask32));
  return _mm512_add_epi64(
      _mm512_add_epi64(_mm512_mul_epu32(ah, mh), _mm512_srli_epi64(u, 32)),
      _mm512_srli_epi64(v, 32));
}

inline __m512i Fmix64v(__m512i k) {
  k = _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
  k = _mm512_mullo_epi64(k, _mm512_set1_epi64(static_cast<long long>(
                                0xff51afd7ed558ccdULL)));
  k = _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
  k = _mm512_mullo_epi64(k, _mm512_set1_epi64(static_cast<long long>(
                                0xc4ceb9fe1a85ec53ULL)));
  return _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
}

void RouteAvx512(const double* xs, size_t n, double slope, double intercept,
                 double factor, uint32_t max_leaf, uint32_t* leaves) {
  const __m512d vs = _mm512_set1_pd(slope);
  const __m512d vi = _mm512_set1_pd(intercept);
  const __m512d vf = _mm512_set1_pd(factor);
  const __m512d zero = _mm512_setzero_pd();
  const __m512d cap = _mm512_set1_pd(static_cast<double>(max_leaf));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d x = _mm512_loadu_pd(xs + i);
    __m512d s = _mm512_mul_pd(_mm512_fmadd_pd(vs, x, vi), vf);
    s = _mm512_max_pd(s, zero);  // NaN and non-positive -> 0
    s = _mm512_min_pd(s, cap);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(leaves + i),
                        _mm512_cvttpd_epu32(s));
  }
  for (; i < n; ++i) {
    leaves[i] = ScalarRoute1(xs[i], slope, intercept, factor, max_leaf);
  }
}

void PredictRunAvx512(const double* xs, size_t n, double slope,
                      double intercept, uint64_t max_pos, uint64_t* pos) {
  const __m512d vs = _mm512_set1_pd(slope);
  const __m512d vi = _mm512_set1_pd(intercept);
  const __m512d zero = _mm512_setzero_pd();
  const __m512d half = _mm512_set1_pd(0.5);
  const __m512d cap = _mm512_set1_pd(static_cast<double>(max_pos));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d x = _mm512_loadu_pd(xs + i);
    __m512d p = _mm512_fmadd_pd(vs, x, vi);
    p = _mm512_max_pd(p, zero);
    __m512d r = _mm512_floor_pd(_mm512_add_pd(p, half));
    r = _mm512_min_pd(r, cap);
    _mm512_storeu_si512(pos + i, _mm512_cvttpd_epu64(r));
  }
  for (; i < n; ++i) {
    pos[i] = ScalarPredict1(xs[i], slope, intercept, max_pos);
  }
}

constexpr size_t kScanWidth = 64;  // same handoff width as every level

// Horizontal sum of eight 64-bit lanes (the compare-accumulator reduction).
inline size_t HSum8(__m512i acc) {
  return static_cast<size_t>(_mm512_reduce_add_epi64(acc));
}

size_t LowerBoundU64Avx512(const uint64_t* data, size_t lo, size_t hi,
                           uint64_t key) {
  while (hi - lo > kScanWidth) {
    const size_t mid = lo + (hi - lo) / 2;
    const bool lt = data[mid] < key;
    lo = lt ? mid + 1 : lo;
    hi = lt ? hi : mid;
  }
  const __m512i vkey = _mm512_set1_epi64(static_cast<long long>(key));
  __m512i acc = _mm512_setzero_si512();
  const __m512i vone = _mm512_set1_epi64(1);
  size_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    const __m512i v = _mm512_loadu_si512(data + i);
    const __mmask8 lt = _mm512_cmplt_epu64_mask(v, vkey);
    // Masked add accumulates per-lane counts with no kmov/popcnt in the
    // loop.
    acc = _mm512_mask_add_epi64(acc, lt, acc, vone);
  }
  size_t count = HSum8(acc);
  for (; i < hi; ++i) count += static_cast<size_t>(data[i] < key);
  return lo + count;
}

size_t LowerBoundF64Avx512(const double* data, size_t lo, size_t hi,
                           double key) {
  while (hi - lo > kScanWidth) {
    const size_t mid = lo + (hi - lo) / 2;
    const bool lt = data[mid] < key;
    lo = lt ? mid + 1 : lo;
    hi = lt ? hi : mid;
  }
  const __m512d vkey = _mm512_set1_pd(key);
  __m512i acc = _mm512_setzero_si512();
  const __m512i vone = _mm512_set1_epi64(1);
  size_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    const __m512d v = _mm512_loadu_pd(data + i);
    const __mmask8 lt = _mm512_cmp_pd_mask(v, vkey, _CMP_LT_OQ);
    acc = _mm512_mask_add_epi64(acc, lt, acc, vone);
  }
  size_t count = HSum8(acc);
  for (; i < hi; ++i) count += static_cast<size_t>(data[i] < key);
  return lo + count;
}

size_t UpperBoundU64Avx512(const uint64_t* data, size_t lo, size_t hi,
                           uint64_t key) {
  while (hi - lo > kScanWidth) {
    const size_t mid = lo + (hi - lo) / 2;
    const bool le = data[mid] <= key;
    lo = le ? mid + 1 : lo;
    hi = le ? hi : mid;
  }
  const __m512i vkey = _mm512_set1_epi64(static_cast<long long>(key));
  __m512i acc = _mm512_setzero_si512();
  const __m512i vone = _mm512_set1_epi64(1);
  size_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    const __m512i v = _mm512_loadu_si512(data + i);
    const __mmask8 le = _mm512_cmple_epu64_mask(v, vkey);
    acc = _mm512_mask_add_epi64(acc, le, acc, vone);
  }
  size_t count = HSum8(acc);
  for (; i < hi; ++i) count += static_cast<size_t>(data[i] <= key);
  return lo + count;
}

void LowerBoundU64MultiAvx512(const uint64_t* data, const size_t* lo,
                             const size_t* hi, const uint64_t* keys, size_t n,
                             size_t* out) {
  const __m512i vone = _mm512_set1_epi64(1);
  size_t k = 0;
  // Two keys in flight: their sweep loads are independent, so pairing the
  // accumulator loops lets outstanding misses overlap instead of
  // serializing behind each key's horizontal reduction.
  for (; k + 2 <= n; k += 2) {
    size_t lo0 = lo[k], hi0 = hi[k], lo1 = lo[k + 1], hi1 = hi[k + 1];
    const uint64_t k0 = keys[k], k1 = keys[k + 1];
    while (hi0 - lo0 > kScanWidth) {
      const size_t mid = lo0 + (hi0 - lo0) / 2;
      const bool lt = data[mid] < k0;
      lo0 = lt ? mid + 1 : lo0;
      hi0 = lt ? hi0 : mid;
    }
    while (hi1 - lo1 > kScanWidth) {
      const size_t mid = lo1 + (hi1 - lo1) / 2;
      const bool lt = data[mid] < k1;
      lo1 = lt ? mid + 1 : lo1;
      hi1 = lt ? hi1 : mid;
    }
    const __m512i vk0 = _mm512_set1_epi64(static_cast<long long>(k0));
    const __m512i vk1 = _mm512_set1_epi64(static_cast<long long>(k1));
    __m512i acc0 = _mm512_setzero_si512();
    __m512i acc1 = _mm512_setzero_si512();
    size_t i0 = lo0, i1 = lo1;
    while (i0 + 8 <= hi0 && i1 + 8 <= hi1) {
      const __m512i v0 = _mm512_loadu_si512(data + i0);
      const __m512i v1 = _mm512_loadu_si512(data + i1);
      acc0 = _mm512_mask_add_epi64(acc0, _mm512_cmplt_epu64_mask(v0, vk0),
                                   acc0, vone);
      acc1 = _mm512_mask_add_epi64(acc1, _mm512_cmplt_epu64_mask(v1, vk1),
                                   acc1, vone);
      i0 += 8;
      i1 += 8;
    }
    for (; i0 + 8 <= hi0; i0 += 8) {
      const __m512i v0 = _mm512_loadu_si512(data + i0);
      acc0 = _mm512_mask_add_epi64(acc0, _mm512_cmplt_epu64_mask(v0, vk0),
                                   acc0, vone);
    }
    for (; i1 + 8 <= hi1; i1 += 8) {
      const __m512i v1 = _mm512_loadu_si512(data + i1);
      acc1 = _mm512_mask_add_epi64(acc1, _mm512_cmplt_epu64_mask(v1, vk1),
                                   acc1, vone);
    }
    size_t c0 = HSum8(acc0);
    size_t c1 = HSum8(acc1);
    for (; i0 < hi0; ++i0) c0 += static_cast<size_t>(data[i0] < k0);
    for (; i1 < hi1; ++i1) c1 += static_cast<size_t>(data[i1] < k1);
    out[k] = lo0 + c0;
    out[k + 1] = lo1 + c1;
  }
  for (; k < n; ++k) {
    out[k] = LowerBoundU64Avx512(data, lo[k], hi[k], keys[k]);
  }
}

void LowerBoundF64MultiAvx512(const double* data, const size_t* lo,
                             const size_t* hi, const double* keys, size_t n,
                             size_t* out) {
  for (size_t k = 0; k < n; ++k) {
    out[k] = LowerBoundF64Avx512(data, lo[k], hi[k], keys[k]);
  }
}

void U64ToF64Avx512(const uint64_t* keys, size_t n, double* xs) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(xs + i,
                     _mm512_cvtepu64_pd(_mm512_loadu_si512(keys + i)));
  }
  for (; i < n; ++i) xs[i] = static_cast<double>(keys[i]);
}

void HashSlotsAvx512(const uint64_t* keys, size_t n, uint64_t seed,
                     uint64_t num_slots, uint64_t* slots) {
  const __m512i vseed = _mm512_set1_epi64(static_cast<long long>(seed));
  const __m512i vm = _mm512_set1_epi64(static_cast<long long>(num_slots));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i k =
        _mm512_xor_si512(_mm512_loadu_si512(keys + i), vseed);
    _mm512_storeu_si512(slots + i, MulHi64v(Fmix64v(k), vm));
  }
  for (; i < n; ++i) slots[i] = ScalarHashSlot(keys[i], seed, num_slots);
}

void CuckooSlotsAvx512(const uint64_t* keys, size_t n, uint64_t seed,
                       uint64_t num_buckets, uint64_t* b1, uint64_t* b2) {
  const __m512i vseed = _mm512_set1_epi64(static_cast<long long>(seed));
  const __m512i vadd = _mm512_set1_epi64(
      static_cast<long long>(0x9e3779b97f4a7c15ULL + seed));
  const __m512i vm = _mm512_set1_epi64(static_cast<long long>(num_buckets));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i k = _mm512_loadu_si512(keys + i);
    _mm512_storeu_si512(b1 + i,
                        MulHi64v(Fmix64v(_mm512_xor_si512(k, vseed)), vm));
    _mm512_storeu_si512(b2 + i,
                        MulHi64v(Fmix64v(_mm512_add_epi64(k, vadd)), vm));
  }
  for (; i < n; ++i) {
    ScalarCuckooSlots(keys[i], seed, num_buckets, &b1[i], &b2[i]);
  }
}

}  // namespace

const Kernels* Avx512Kernels() {
  static const Kernels kTable = {
      "avx512",          RouteAvx512,        PredictRunAvx512,
      LowerBoundU64Avx512, LowerBoundF64Avx512, UpperBoundU64Avx512,
      LowerBoundU64MultiAvx512, LowerBoundF64MultiAvx512,
      U64ToF64Avx512,    HashSlotsAvx512,    CuckooSlotsAvx512,
  };
  return &kTable;
}

}  // namespace li::simd

#else  // !(__AVX512F__ && __AVX512DQ__)

namespace li::simd {
const Kernels* Avx512Kernels() { return nullptr; }
}  // namespace li::simd

#endif
