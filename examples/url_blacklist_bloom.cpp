// Scenario example: an existence index (§5) for a phishing-URL blacklist —
// the paper's §5.2 experiment. Trains a character classifier, builds a
// learned Bloom filter with an overflow filter (zero false negatives), and
// compares its memory footprint against a standard Bloom filter at the
// same false-positive rate.

#include <cstdio>
#include <cstdlib>

#include "bloom/bloom_filter.h"
#include "bloom/learned_bloom.h"
#include "classifier/gru.h"
#include "classifier/ngram_logistic.h"
#include "data/strings.h"

int main(int argc, char** argv) {
  using namespace li;
  const size_t num_keys =
      argc > 1 ? static_cast<size_t>(atol(argv[1])) : 50'000;

  printf("== URL blacklist learned Bloom filter ==\n");
  data::UrlCorpus corpus = data::GenUrls(num_keys, num_keys);
  const size_t third = corpus.random_negatives.size() / 3;
  std::vector<std::string> train_neg(corpus.random_negatives.begin(),
                                     corpus.random_negatives.begin() + third);
  std::vector<std::string> valid_neg(
      corpus.random_negatives.begin() + third,
      corpus.random_negatives.begin() + 2 * third);
  std::vector<std::string> test_neg(corpus.random_negatives.begin() + 2 * third,
                                    corpus.random_negatives.end());
  printf("%zu blacklisted URLs, %zu negatives (train/valid/test)\n",
         corpus.keys.size(), corpus.random_negatives.size());

  classifier::NgramConfig ngram_config;
  ngram_config.num_buckets = std::max<size_t>(1024, num_keys / 16);
  classifier::NgramLogistic model;
  if (const Status s = model.Train(corpus.keys, train_neg, ngram_config);
      !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  const double target_fpr = 0.01;
  bloom::LearnedBloomFilter<classifier::NgramLogistic> learned;
  if (const Status s =
          learned.Build(&model, corpus.keys, valid_neg, target_fpr);
      !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  bloom::BloomFilter plain;
  if (!plain.Init(corpus.keys.size(), target_fpr).ok()) return 1;
  for (const auto& k : corpus.keys) plain.Add(k);

  // Sanity: no false negatives, by construction.
  size_t misses = 0;
  for (const auto& k : corpus.keys) misses += !learned.MightContain(k);
  printf("false negatives: %zu (must be 0)\n", misses);

  printf("\n                         %10s %10s\n", "learned", "standard");
  printf("size                     %7.3f MB %7.3f MB\n",
         learned.SizeBytes() / 1e6, plain.SizeBytes() / 1e6);
  printf("test FPR                 %9.2f%% %9.2f%%\n",
         100.0 * learned.MeasuredFpr(test_neg),
         100.0 * plain.MeasuredFpr(test_neg));
  printf("classifier FNR (spilled) %9.1f%%\n", 100.0 * learned.fnr());
  printf("memory saved: %.0f%%\n",
         100.0 * (1.0 - static_cast<double>(learned.SizeBytes()) /
                            plain.SizeBytes()));
  return 0;
}
