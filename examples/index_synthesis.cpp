// Scenario example: the Learning Index Framework (§3.1) as an index
// *synthesizer* — hand it a key set and a size budget, get back the fastest
// index configuration found by grid search, with the full candidate sweep
// printed the way LIF "generates different index configurations, optimizes
// them, and tests them automatically". Covers all three index classes of
// the paper: range (§3), point (§4), and existence (§5).

#include <cstdio>
#include <cstdlib>

#include "data/datasets.h"
#include "data/strings.h"
#include "lif/measure.h"
#include "lif/synthesizer.h"

using namespace li;

namespace {

void PrintReports(const std::vector<lif::CandidateReport>& reports,
                  bool with_fpr) {
  lif::Table table({"candidate", "size MB", "lookup ns",
                    with_fpr ? "meas. FPR" : "model ns", "fits budget"});
  for (const auto& r : reports) {
    char size_mb[32], lookup[32], extra[32];
    snprintf(size_mb, sizeof(size_mb), "%.3f", r.size_bytes / 1e6);
    snprintf(lookup, sizeof(lookup), "%.0f", r.lookup_ns);
    if (with_fpr) {
      snprintf(extra, sizeof(extra), "%.2f%%", 100.0 * r.fpr);
    } else {
      snprintf(extra, sizeof(extra), "%.0f", r.model_ns);
    }
    table.AddRow({r.description, size_mb, lookup, extra,
                  r.within_budget ? "yes" : "no"});
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n =
      (argc > 1 ? static_cast<size_t>(atol(argv[1])) : 1) * 1'000'000;
  const double budget_mb = argc > 2 ? atof(argv[2]) : 4.0;

  // ---- Range index (§3): fastest LowerBound within the size budget ----
  printf("== LIF range-index synthesis ==\n");
  const std::vector<uint64_t> keys = data::GenWeblog(n);
  printf("dataset: %zu weblog timestamps, size budget %.1f MB\n", n,
         budget_mb);

  lif::SynthesisSpec spec;
  spec.stage2_sizes = {1000, 10'000, 50'000};
  spec.nn_hidden = {{8}, {16, 16}};
  spec.nn_epochs = 10;
  spec.size_budget_bytes = static_cast<size_t>(budget_mb * 1e6);
  lif::SynthesizedIndex index;
  if (const Status s = index.Synthesize(keys, spec); !s.ok()) {
    fprintf(stderr, "synthesis failed: %s\n", s.ToString().c_str());
    return 1;
  }
  PrintReports(index.reports(), /*with_fpr=*/false);
  printf("winner: %s (%.2f MB)\n\n", index.description().c_str(),
         index.SizeBytes() / 1e6);

  const auto queries = data::SampleKeys(keys, 10'000);
  size_t hits = 0;
  for (const uint64_t q : queries) {
    const size_t pos = index.LowerBound(q);
    hits += pos < keys.size() && keys[pos] == q;
  }
  printf("verified %zu/%zu sampled range lookups\n\n", hits, queries.size());

  // ---- Point index (§4): hash family x slot sweep x map family ----
  printf("== LIF point-index synthesis ==\n");
  std::vector<hash::Record> records;
  records.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    records.push_back({keys[i], i, 0});
  }
  lif::PointSynthesisSpec pspec;
  pspec.eval_queries = 10'000;
  lif::SynthesizedPointIndex pindex;
  if (const Status s = pindex.Synthesize(records, pspec); !s.ok()) {
    fprintf(stderr, "point synthesis failed: %s\n", s.ToString().c_str());
    return 1;
  }
  PrintReports(pindex.reports(), /*with_fpr=*/false);
  printf("winner: %s (%.2f MB incl. records)\n", pindex.description().c_str(),
         pindex.SizeBytes() / 1e6);
  hits = 0;
  for (const uint64_t q : queries) hits += pindex.Find(q) != nullptr;
  printf("verified %zu/%zu sampled point lookups\n\n", hits, queries.size());

  // ---- Existence index (§5): smallest filter meeting the target FPR ----
  printf("== LIF existence-index synthesis ==\n");
  const size_t num_urls = 20'000;
  data::UrlCorpus corpus = data::GenUrls(num_urls, num_urls);
  const size_t third = corpus.random_negatives.size() / 3;
  const std::vector<std::string> train_neg(
      corpus.random_negatives.begin(), corpus.random_negatives.begin() + third);
  const std::vector<std::string> valid_neg(
      corpus.random_negatives.begin() + third,
      corpus.random_negatives.begin() + 2 * third);
  const std::vector<std::string> test_neg(
      corpus.random_negatives.begin() + 2 * third,
      corpus.random_negatives.end());
  lif::ExistenceSynthesisSpec espec;
  espec.target_fpr = 0.01;
  lif::SynthesizedExistenceIndex eindex;
  if (const Status s = eindex.Synthesize(corpus.keys, train_neg, valid_neg,
                                         test_neg, espec);
      !s.ok()) {
    fprintf(stderr, "existence synthesis failed: %s\n", s.ToString().c_str());
    return 1;
  }
  PrintReports(eindex.reports(), /*with_fpr=*/true);
  printf("winner: %s (%.3f MB, measured FPR %.2f%%)\n",
         eindex.description().c_str(), eindex.SizeBytes() / 1e6,
         100.0 * eindex.MeasuredFpr(test_neg));
  size_t misses = 0;
  for (const auto& k : corpus.keys) misses += !eindex.MightContain(k);
  printf("false negatives: %zu (must be 0)\n", misses);
  return 0;
}
