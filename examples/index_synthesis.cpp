// Scenario example: the Learning Index Framework (§3.1) as an index
// *synthesizer* — hand it a key set and a size budget, get back the fastest
// index configuration found by grid search, with the full candidate sweep
// printed the way LIF "generates different index configurations, optimizes
// them, and tests them automatically".

#include <cstdio>
#include <cstdlib>

#include "data/datasets.h"
#include "lif/measure.h"
#include "lif/synthesizer.h"

int main(int argc, char** argv) {
  using namespace li;
  const size_t n =
      (argc > 1 ? static_cast<size_t>(atol(argv[1])) : 1) * 1'000'000;
  const double budget_mb = argc > 2 ? atof(argv[2]) : 4.0;

  printf("== LIF index synthesis ==\n");
  const std::vector<uint64_t> keys = data::GenWeblog(n);
  printf("dataset: %zu weblog timestamps, size budget %.1f MB\n", n,
         budget_mb);

  lif::SynthesisSpec spec;
  spec.stage2_sizes = {1000, 10'000, 50'000};
  spec.nn_hidden = {{8}, {16, 16}};
  spec.nn_epochs = 10;
  spec.size_budget_bytes = static_cast<size_t>(budget_mb * 1e6);
  lif::SynthesizedIndex index;
  if (const Status s = index.Synthesize(keys, spec); !s.ok()) {
    fprintf(stderr, "synthesis failed: %s\n", s.ToString().c_str());
    return 1;
  }

  lif::Table table({"candidate", "size MB", "lookup ns", "model ns",
                    "max |err|", "fits budget"});
  for (const auto& r : index.reports()) {
    char size_mb[32], lookup[32], model[32], err[32];
    snprintf(size_mb, sizeof(size_mb), "%.2f", r.size_bytes / 1e6);
    snprintf(lookup, sizeof(lookup), "%.0f", r.lookup_ns);
    snprintf(model, sizeof(model), "%.0f", r.model_ns);
    snprintf(err, sizeof(err), "%lld", static_cast<long long>(r.max_abs_err));
    table.AddRow({r.description, size_mb, lookup, model, err,
                  r.within_budget ? "yes" : "no"});
  }
  table.Print();
  printf("\nwinner: %s (%.2f MB)\n", index.description().c_str(),
         index.SizeBytes() / 1e6);

  // The synthesized index is immediately usable.
  const auto queries = data::SampleKeys(keys, 10'000);
  size_t hits = 0;
  for (const uint64_t q : queries) {
    const size_t pos = index.LowerBound(q);
    hits += pos < keys.size() && keys[pos] == q;
  }
  printf("verified %zu/%zu sampled lookups\n", hits, queries.size());
  return 0;
}
