// Scenario example: a multi-dimensional learned index (§7 future work) —
// map features indexed by (longitude, latitude) on a z-order curve with a
// learned CDF model over curve offsets. Rectangle queries ("all coffee
// shops in this bounding box") walk the curve with BIGMIN skipping.

#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "mdim/mdim_index.h"

int main(int argc, char** argv) {
  using namespace li;
  const size_t n =
      (argc > 1 ? static_cast<size_t>(atol(argv[1])) : 1) * 1'000'000;

  printf("== spatial learned index example ==\n");
  // World-like feature set: dense cities, sparse countryside.
  Xorshift128Plus rng(42);
  std::vector<mdim::Point> features;
  features.reserve(n);
  const uint32_t kWorld = 1u << 24;
  std::vector<std::pair<double, double>> cities;
  for (int i = 0; i < 16; ++i) {
    cities.emplace_back(rng.NextDouble() * kWorld, rng.NextDouble() * kWorld);
  }
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < 0.2) {
      features.push_back({static_cast<uint32_t>(rng.NextBounded(kWorld)),
                          static_cast<uint32_t>(rng.NextBounded(kWorld))});
    } else {
      const auto& [cx, cy] = cities[rng.NextBounded(cities.size())];
      const double x = cx + 30'000.0 * rng.NextGaussian();
      const double y = cy + 30'000.0 * rng.NextGaussian();
      features.push_back(
          {static_cast<uint32_t>(std::clamp(x, 0.0, double(kWorld - 1))),
           static_cast<uint32_t>(std::clamp(y, 0.0, double(kWorld - 1)))});
    }
  }

  mdim::LearnedZIndex index;
  if (const Status s = index.Build(features, n / 100); !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  printf("%zu features indexed; learned index overhead %.2f MB\n",
         index.size(), index.SizeBytes() / 1e6);

  // Bounding-box query around the first city.
  const uint32_t cx = static_cast<uint32_t>(cities[0].first);
  const uint32_t cy = static_cast<uint32_t>(cities[0].second);
  const uint32_t r = 20'000;
  mdim::Rect box{cx > r ? cx - r : 0, cy > r ? cy - r : 0, cx + r, cy + r};
  std::vector<mdim::Point> hits;
  index.RangeQuery(box, &hits);
  printf("bounding box (%u,%u)-(%u,%u): %zu features, %zu learned seeks\n",
         box.x0, box.y0, box.x1, box.y1, hits.size(),
         index.last_query_seeks());

  // Point probe.
  printf("Contains(first feature) = %s\n",
         index.Contains(features[0]) ? "yes" : "no");
  return 0;
}
