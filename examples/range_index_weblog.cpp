// Scenario example: a secondary index over web-server log timestamps —
// the paper's motivating workload (§2.3). Demonstrates:
//   * the hard-to-learn weblog CDF (complex time patterns),
//   * hybrid indexes bounding worst-case leaves with B-Trees (§3.3),
//   * time-range analytics queries via lower_bound scans.

#include <cstdio>
#include <cstdlib>

#include "data/datasets.h"
#include "lif/measure.h"
#include "rmi/hybrid.h"
#include "rmi/rmi.h"

int main(int argc, char** argv) {
  using namespace li;
  const size_t n =
      (argc > 1 ? static_cast<size_t>(atol(argv[1])) : 2) * 1'000'000;

  printf("== weblog secondary-index example ==\n");
  const std::vector<uint64_t> ts = data::GenWeblog(n);
  printf("%zu request timestamps spanning %.1f days\n", n,
         static_cast<double>(ts.back() - ts.front()) / 86'400e6);

  // Pure learned index.
  rmi::RmiConfig rmi_cfg;
  rmi_cfg.num_leaf_models = 10'000;
  rmi::LinearRmi learned;
  if (const Status s = learned.Build(ts, rmi_cfg); !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // Hybrid: replace bad leaves with B-Trees above |err| 128.
  rmi::HybridConfig hybrid_cfg;
  hybrid_cfg.rmi = rmi_cfg;
  hybrid_cfg.threshold = 128;
  rmi::HybridRmi<models::LinearModel> hybrid;
  if (const Status s = hybrid.Build(ts, hybrid_cfg); !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  printf("learned index: %.2f MB, max |err| %lld\n",
         learned.SizeBytes() / 1e6,
         static_cast<long long>(learned.MaxAbsError()));
  printf("hybrid index:  %.2f MB, %zu/%zu leaves swapped to B-Trees\n",
         hybrid.SizeBytes() / 1e6, hybrid.num_btree_leaves(),
         rmi_cfg.num_leaf_models);

  // Analytics query: requests within one hour of a burst.
  const uint64_t t0 = ts[n / 2];
  const uint64_t t1 = t0 + uint64_t{3600} * 1'000'000;
  size_t hits = 0;
  for (size_t i = learned.LowerBound(t0); i < ts.size() && ts[i] < t1; ++i) {
    ++hits;
  }
  printf("requests in 1h window starting at key %llu: %zu\n",
         static_cast<unsigned long long>(t0), hits);

  const auto queries = data::SampleKeys(ts, 100'000);
  const double ln = lif::MeasureNsPerOp(
      queries, 2, [&](uint64_t q) { return learned.LowerBound(q); });
  const double hn = lif::MeasureNsPerOp(
      queries, 2, [&](uint64_t q) { return hybrid.LowerBound(q); });
  printf("lookup: learned %.0f ns, hybrid %.0f ns\n", ln, hn);
  return 0;
}
