// Scenario example: handling inserts with a delta index (Appendix D.1) —
// "all inserts are kept in buffer and from time to time merged with a
// potential retraining of the model ... already widely used, for example
// in Bigtable". New keys go to a dynamic B+-Tree; lookups consult both the
// learned index over the immutable base and the delta; a merge folds the
// delta into a fresh base and retrains the RMI.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "btree/dynamic_btree.h"
#include "common/random.h"
#include "data/datasets.h"
#include "rmi/rmi.h"

namespace {

/// A minimal LSM-flavoured index: learned base + B-Tree delta.
class DeltaIndexedStore {
 public:
  explicit DeltaIndexedStore(std::vector<uint64_t> base)
      : base_(std::move(base)) {
    Retrain();
  }

  void Insert(uint64_t key) { delta_.Insert(key, 0); }

  bool Contains(uint64_t key) const {
    return rmi_.Contains(key) || delta_.Find(key).has_value();
  }

  /// Merge delta into the base and retrain (the Appendix-D.1 cycle).
  void Merge() {
    std::vector<uint64_t> merged;
    merged.reserve(base_.size() + delta_.size());
    auto it = delta_.Begin();
    size_t i = 0;
    while (i < base_.size() || it.Valid()) {
      if (!it.Valid() || (i < base_.size() && base_[i] < it.key())) {
        merged.push_back(base_[i++]);
      } else {
        if (i < base_.size() && base_[i] == it.key()) ++i;  // dedupe
        merged.push_back(it.key());
        it.Next();
      }
    }
    base_ = std::move(merged);
    delta_ = li::btree::BTreeMap();
    Retrain();
  }

  size_t base_size() const { return base_.size(); }
  size_t delta_size() const { return delta_.size(); }

 private:
  void Retrain() {
    li::rmi::RmiConfig config;
    config.num_leaf_models = std::max<size_t>(64, base_.size() / 200);
    if (const li::Status s = rmi_.Build(base_, config); !s.ok()) {
      fprintf(stderr, "retrain failed: %s\n", s.ToString().c_str());
      abort();
    }
  }

  std::vector<uint64_t> base_;
  li::rmi::LinearRmi rmi_;
  li::btree::BTreeMap delta_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace li;
  const size_t n =
      (argc > 1 ? static_cast<size_t>(atol(argv[1])) : 1) * 1'000'000;

  printf("== delta-index insert handling (Appendix D.1) ==\n");
  DeltaIndexedStore store(data::GenWeblog(n));
  printf("base: %zu keys (learned index), delta: empty\n", store.base_size());

  // Append-style inserts: later timestamps (the Appendix-D.1 append case).
  Xorshift128Plus rng(3);
  std::vector<uint64_t> fresh;
  uint64_t t = 3'000'000'000'000ULL * 40;  // beyond the generated range
  for (int i = 0; i < 100'000; ++i) {
    t += rng.NextBounded(1'000'000) + 1;
    fresh.push_back(t);
    store.Insert(t);
  }
  printf("inserted %zu new timestamps into the delta B-Tree\n", fresh.size());

  size_t found = 0;
  for (const uint64_t k : fresh) found += store.Contains(k);
  printf("visible before merge: %zu/%zu\n", found, fresh.size());

  store.Merge();
  printf("merged: base now %zu keys, delta %zu\n", store.base_size(),
         store.delta_size());
  found = 0;
  for (const uint64_t k : fresh) found += store.Contains(k);
  printf("visible after merge: %zu/%zu\n", found, fresh.size());
  return found == fresh.size() ? 0 : 1;
}
