// Scenario example: handling inserts with a delta index (Appendix D.1) —
// "all inserts are kept in buffer and from time to time merged with a
// potential retraining of the model ... already widely used, for example
// in Bigtable".
//
// This used to be a hand-rolled ~100-line inline class; it now rides the
// library's writable-index subsystem: dynamic::DeltaRangeIndex wraps the
// learned RMI base, buffers Insert/Erase in sorted runs, serves lookups
// from base+delta, and merges+retrains under a pluggable policy. The old
// inline merge loop (and its subtle dedupe-ordering questions — see the
// duplicate-key regression in tests/writable_index_conformance_test.cc)
// is gone.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "data/datasets.h"
#include "dynamic/delta_range_index.h"
#include "rmi/rmi.h"

int main(int argc, char** argv) {
  using namespace li;
  const size_t n =
      (argc > 1 ? static_cast<size_t>(atol(argv[1])) : 1) * 1'000'000;

  printf("== delta-index insert handling (Appendix D.1) ==\n");
  const std::vector<uint64_t> base = data::GenWeblog(n);

  using Store = dynamic::DeltaRangeIndex<rmi::LinearRmi>;
  Store::Config config;
  config.base.num_leaf_models = std::max<size_t>(64, base.size() / 200);
  // Auto-merge once the delta holds 64k entries, so the second half of
  // the insert stream demonstrates the automatic Appendix-D.1 cycle; the
  // explicit Merge() below flushes the remainder.
  config.policy.trigger = dynamic::MergeTrigger::kSizeThreshold;
  config.policy.max_delta_entries = 64 * 1024;

  Store store;
  if (const Status s = store.Build(base, config); !s.ok()) {
    fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("base: %zu keys (learned index), delta: empty\n", store.size());

  // Append-style inserts: later timestamps (the Appendix-D.1 append case).
  Xorshift128Plus rng(3);
  std::vector<uint64_t> fresh;
  uint64_t t = 3'000'000'000'000ULL * 40;  // beyond the generated range
  for (int i = 0; i < 100'000; ++i) {
    t += rng.NextBounded(1'000'000) + 1;
    fresh.push_back(t);
    store.Insert(t);
  }
  printf("inserted %zu new timestamps into the delta buffer\n", fresh.size());

  size_t found = 0;
  for (const uint64_t k : fresh) found += store.Contains(k);
  printf("visible before final merge: %zu/%zu\n", found, fresh.size());

  if (const Status s = store.Merge(); !s.ok()) {
    fprintf(stderr, "merge failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const auto stats = store.Stats();
  printf("merged: base now %zu keys, delta %zu entries\n", stats.base_keys,
         stats.delta_entries);
  printf(
      "stats: %llu merges (%.1f ms total), delta hit rate %.1f%%, "
      "index %zu bytes\n",
      static_cast<unsigned long long>(stats.merges),
      stats.total_merge_ns / 1e6, stats.DeltaHitRate() * 100.0,
      store.SizeBytes());

  found = 0;
  for (const uint64_t k : fresh) found += store.Contains(k);
  printf("visible after merge: %zu/%zu\n", found, fresh.size());

  // Erase flows through the same delta: tombstone now, fold at merge.
  size_t erased = 0;
  for (size_t i = 0; i < fresh.size(); i += 2) erased += store.Erase(fresh[i]);
  printf("erased %zu of the fresh keys (tombstoned in the delta)\n", erased);
  size_t gone = 0;
  for (size_t i = 0; i < fresh.size(); i += 2) gone += !store.Contains(fresh[i]);

  // Ordered scans see through base + delta too.
  const auto window = store.Scan(fresh.front(), 5);
  printf("scan from first fresh key: %zu keys, first=%llu\n", window.size(),
         window.empty() ? 0ULL
                        : static_cast<unsigned long long>(window.front()));

  const bool ok =
      found == fresh.size() && gone == erased && erased == fresh.size() / 2;
  printf("%s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
