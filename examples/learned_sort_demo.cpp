// Scenario example: learned algorithms beyond indexing (§7) — CDF-model
// based sorting. Scatter by predicted rank, then repair nearly-sorted runs.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "common/timer.h"
#include "data/datasets.h"
#include "sort/learned_sort.h"

int main(int argc, char** argv) {
  using namespace li;
  const size_t n =
      (argc > 1 ? static_cast<size_t>(atol(argv[1])) : 5) * 1'000'000;

  printf("== learned sort demo ==\n");
  std::vector<uint64_t> base = data::GenLognormal(n);
  Xorshift128Plus rng(7);
  for (size_t i = base.size(); i > 1; --i) {
    std::swap(base[i - 1], base[rng.NextBounded(i)]);
  }

  std::vector<uint64_t> a = base, b = base;
  Timer t1;
  std::sort(a.begin(), a.end());
  const double std_ms = t1.ElapsedMillis();

  Timer t2;
  if (const Status s = sort::LearnedSort(&b); !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const double learned_ms = t2.ElapsedMillis();

  printf("%zu lognormal keys:\n", n);
  printf("  std::sort    %8.1f ms\n", std_ms);
  printf("  learned sort %8.1f ms  (%.2fx)\n", learned_ms,
         std_ms / learned_ms);
  printf("  outputs identical: %s\n", a == b ? "yes" : "NO — BUG");
  return a == b ? 0 : 1;
}
