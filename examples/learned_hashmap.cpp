// Scenario example: a point index (§4) — separate-chaining hash map whose
// hash function is a learned CDF model, compared against MurmurHash-style
// random hashing. Shows the conflict-rate and wasted-space reductions of
// Figure 8 / Figure 11 on live data structures.

#include <cstdio>
#include <cstdlib>

#include "data/datasets.h"
#include "hash/chained_hash_map.h"
#include "hash/hash_fn.h"
#include "lif/measure.h"

int main(int argc, char** argv) {
  using namespace li;
  const size_t n =
      (argc > 1 ? static_cast<size_t>(atol(argv[1])) : 2) * 1'000'000;

  printf("== learned hash map example ==\n");
  const std::vector<uint64_t> keys = data::GenMaps(n);
  std::vector<hash::Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    records.push_back({keys[i], i, 0});
  }

  // Learned hash: 2-stage RMI, linear top, no hidden layers (§4.2).
  hash::LearnedHash<models::LinearModel> learned_fn;
  rmi::RmiConfig config;
  config.num_leaf_models = 100'000;
  if (const Status s = learned_fn.Build(keys, n, config); !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  hash::RandomHash random_fn(n, /*seed=*/3);

  printf("conflict rate: learned %.1f%% vs random %.1f%%\n",
         100.0 * hash::ConflictRate(keys, learned_fn, n),
         100.0 * hash::ConflictRate(keys, random_fn, n));

  hash::ChainedHashMap<hash::LearnedHash<models::LinearModel>> learned_map;
  hash::ChainedHashMap<hash::RandomHash> random_map;
  if (!learned_map.Build(records, n, learned_fn).ok() ||
      !random_map.Build(records, n, random_fn).ok()) {
    fprintf(stderr, "hash map build failed\n");
    return 1;
  }
  printf("empty slots (wasted space): learned %.2f GB vs random %.2f GB\n",
         learned_map.EmptySlotBytes() / 1e9,
         random_map.EmptySlotBytes() / 1e9);

  const auto probes = data::SampleKeys(keys, 200'000);
  const double ln = lif::MeasureNsPerOp(probes, 2, [&](uint64_t q) {
    return learned_map.Find(q) != nullptr;
  });
  const double rn = lif::MeasureNsPerOp(probes, 2, [&](uint64_t q) {
    return random_map.Find(q) != nullptr;
  });
  printf("lookup: learned %.0f ns vs random %.0f ns\n", ln, rn);
  printf("(learned hashing trades model-execution time for fewer chains\n"
         " and less wasted memory — Appendix B)\n");
  return 0;
}
