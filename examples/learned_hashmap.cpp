// Scenario example: a point index (§4) — separate-chaining hash map whose
// hash function is a learned CDF model, compared against MurmurHash-style
// random hashing. Shows the conflict-rate and wasted-space reductions of
// Figure 8 / Figure 11 on live data structures, all built through the
// PointIndex contract: the hash family is build configuration, and the
// winner can be held type-erased (index::AnyPointIndex) like any other
// point index.

#include <cstdio>
#include <cstdlib>

#include "data/datasets.h"
#include "hash/chained_hash_map.h"
#include "index/point_index.h"
#include "lif/measure.h"

int main(int argc, char** argv) {
  using namespace li;
  const size_t n =
      (argc > 1 ? static_cast<size_t>(atol(argv[1])) : 2) * 1'000'000;

  printf("== learned hash map example ==\n");
  const std::vector<uint64_t> keys = data::GenMaps(n);
  std::vector<hash::Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    records.push_back({keys[i], i, 0});
  }

  // Learned hash: 2-stage RMI, linear top, no hidden layers (§4.2) —
  // selected by config, not by template parameter.
  hash::ChainedHashMapConfig learned_cfg;
  learned_cfg.hash.kind = hash::HashKind::kLearnedCdf;
  learned_cfg.hash.cdf_leaf_models = 100'000;
  hash::ChainedHashMapConfig random_cfg;
  random_cfg.hash.kind = hash::HashKind::kRandom;
  random_cfg.hash.seed = 3;

  hash::ChainedHashMap learned_map;
  hash::ChainedHashMap random_map;
  if (const Status s = learned_map.Build(records, learned_cfg); !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (!random_map.Build(records, random_cfg).ok()) {
    fprintf(stderr, "hash map build failed\n");
    return 1;
  }

  const index::PointIndexStats learned_stats = learned_map.Stats();
  const index::PointIndexStats random_stats = random_map.Stats();
  printf("conflicts (overflow records): learned %zu vs random %zu\n",
         learned_stats.overflow, random_stats.overflow);
  printf("empty slots (wasted space): learned %.2f GB vs random %.2f GB\n",
         learned_map.EmptySlotBytes() / 1e9,
         random_map.EmptySlotBytes() / 1e9);

  const auto probes = data::SampleKeys(keys, 200'000);
  const double ln = lif::MeasureNsPerOp(probes, 2, [&](uint64_t q) {
    return learned_map.Find(q) != nullptr;
  });
  const double rn = lif::MeasureNsPerOp(probes, 2, [&](uint64_t q) {
    return random_map.Find(q) != nullptr;
  });
  printf("lookup: learned %.0f ns vs random %.0f ns\n", ln, rn);

  // The software-pipelined batch probe overlaps neighboring cache misses.
  std::vector<const hash::Record*> out(probes.size());
  const double bn = lif::MeasureBatchNsPerOp(probes.size(), [&] {
    learned_map.FindBatch(probes, out);
    return out.data();
  });
  printf("batched lookup (FindBatch): %.0f ns/key (%.2fx vs single)\n", bn,
         ln / bn);

  // Type-erased, the winner drops into any PointIndex call site.
  index::AnyPointIndex erased(std::move(learned_map));
  size_t hits = 0;
  for (const uint64_t q : probes) hits += erased.Find(q) != nullptr;
  printf("erased handle verified %zu/%zu probes\n", hits, probes.size());
  printf("(learned hashing trades model-execution time for fewer chains\n"
         " and less wasted memory — Appendix B)\n");
  return 0;
}
