// Scenario example: a multi-user serving front-end over a learned index.
// Writer threads stream fresh keys into a range-sharded concurrent index
// (concurrent::ShardedIndex over ConcurrentWritableIndex<LinearRmi>)
// while reader threads run rank lookups, membership probes and scans the
// whole time — no reader ever blocks on a write or on the background
// merge+retrain cycles the shard workers run.
//
// Prints per-phase throughput and the ConcurrentStats gauges that drive
// tuning: writer-lock contention (the "shard more" signal), freeze and
// merge counts, epoch versions retired/reclaimed, and per-shard balance
// from the CDF-sampled boundaries.
//
//   ./example_concurrent_writes [keys_millions] [writers] [readers]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "concurrent/concurrent_writable_index.h"
#include "concurrent/sharded_index.h"
#include "data/datasets.h"
#include "rmi/rmi.h"

int main(int argc, char** argv) {
  using namespace li;
  const size_t n =
      (argc > 1 ? static_cast<size_t>(atol(argv[1])) : 1) * 1'000'000 / 2;
  const size_t writers = argc > 2 ? static_cast<size_t>(atol(argv[2])) : 4;
  const size_t readers = argc > 3 ? static_cast<size_t>(atol(argv[3])) : 4;
  constexpr size_t kOpsPerWriter = 50'000;
  constexpr size_t kOpsPerReader = 200'000;

  printf("== concurrent writable index: %zu base keys, %zu writers, "
         "%zu readers ==\n",
         n, writers, readers);
  const std::vector<uint64_t> base = data::GenWeblog(n);

  using Shard = concurrent::ConcurrentWritableIndex<rmi::LinearRmi>;
  using Store = concurrent::ShardedIndex<Shard>;
  Store::Config config;
  config.num_shards = 8;
  config.inner.base.num_leaf_models = std::max<size_t>(64, n / 800);
  config.inner.policy.min_delta_entries = 4096;
  config.inner.policy.max_delta_entries = 16 * 1024;
  config.inner.log_cap = 1024;
  // The writers below append past the build range — the classic hotspot
  // that overloads the rightmost shard. Online rebalancing splits it as
  // it grows; watch the splits/imbalance gauges below.
  config.rebalance.enabled = true;
  config.rebalance.max_imbalance = 2.0;

  Store store;
  if (!store.Build(base, config).ok()) {
    fprintf(stderr, "build failed\n");
    return 1;
  }
  printf("built %zu shards; boundary balance: ", store.num_shards());
  for (const size_t s : store.ShardSizes()) printf("%zu ", s);
  printf("\n");

  // Writers append disjoint fresh key ranges; readers probe the base.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads_done{0};
  std::vector<std::thread> pool;
  Timer wall;
  for (size_t w = 0; w < writers; ++w) {
    pool.emplace_back([&, w] {
      Xorshift128Plus rng(100 + w);
      uint64_t key = base.back() + 1 + w;  // stride keeps streams disjoint
      for (size_t i = 0; i < kOpsPerWriter; ++i) {
        store.Insert(key);
        key += writers * (1 + rng.NextBounded(8));
      }
    });
  }
  for (size_t r = 0; r < readers; ++r) {
    pool.emplace_back([&, r] {
      Xorshift128Plus rng(500 + r);
      uint64_t sink = 0;
      for (size_t i = 0; i < kOpsPerReader && !stop.load(); ++i) {
        const uint64_t q = base[rng.NextBounded(base.size())];
        sink += store.Lookup(q);
        if ((i & 255) == 0) sink += store.Scan(q, 16).size();
      }
      DoNotOptimize(sink);
      reads_done.fetch_add(kOpsPerReader);
    });
  }
  for (std::thread& t : pool) t.join();
  const double secs = wall.ElapsedSeconds();
  stop.store(true);

  const uint64_t writes = writers * kOpsPerWriter;
  printf("mixed phase: %.2fs — %.2f Mwrites/s + %.2f Mreads/s aggregate\n",
         secs, static_cast<double>(writes) / secs / 1e6,
         static_cast<double>(reads_done.load()) / secs / 1e6);

  store.WaitForRebalances();
  store.WaitForMerges();
  const auto cs = store.ConcurrentStats();
  printf("gauges: inserts=%llu merges=%llu freezes=%llu "
         "writer-contention=%.2f%% versions retired=%llu reclaimed=%llu\n",
         static_cast<unsigned long long>(cs.inserts),
         static_cast<unsigned long long>(cs.merges),
         static_cast<unsigned long long>(cs.freezes),
         cs.WriterContentionRate() * 100.0,
         static_cast<unsigned long long>(cs.states_retired),
         static_cast<unsigned long long>(cs.states_reclaimed));
  printf("rebalance: %llu splits, %llu coalesces, %zu shards now, "
         "max/mean mass %.2f (bound %.1f)\n",
         static_cast<unsigned long long>(cs.shard_splits),
         static_cast<unsigned long long>(cs.shard_coalesces), cs.shards,
         cs.shard_imbalance, config.rebalance.max_imbalance);

  const size_t expect = base.size() + writes;
  printf("live keys: %zu (expected %zu) -> %s\n", store.size(), expect,
         store.size() == expect ? "OK" : "MISMATCH");
  return store.size() == expect ? 0 : 1;
}
