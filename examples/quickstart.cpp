// Quickstart: build a learned range index (RMI) over a synthetic dataset,
// look up keys, run a range scan, and compare size/latency against the
// read-optimized B-Tree baseline.
//
//   ./examples/quickstart [num_keys_millions]

#include <cstdio>
#include <cstdlib>

#include "btree/readonly_btree.h"
#include "data/datasets.h"
#include "lif/measure.h"
#include "rmi/rmi.h"

int main(int argc, char** argv) {
  using namespace li;
  const size_t n =
      (argc > 1 ? static_cast<size_t>(atol(argv[1])) : 2) * 1'000'000;

  printf("== learned-index quickstart ==\n");
  printf("generating %zu lognormal keys...\n", n);
  const std::vector<uint64_t> keys = data::GenLognormal(n);

  // ---- Build a 2-stage RMI: linear top model + linear leaf models ----
  // ~1000 keys per leaf keeps the index an order of magnitude smaller than
  // the page-128 B-Tree while staying faster.
  rmi::RmiConfig config;
  config.num_leaf_models = std::max<size_t>(64, n / 1000);
  config.strategy = search::Strategy::kBiasedBinary;
  rmi::LinearRmi index;
  if (const Status s = index.Build(keys, config); !s.ok()) {
    fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
    return 1;
  }
  printf("RMI built: %.2f MB index overhead, max |error| = %lld positions\n",
         index.SizeBytes() / 1e6,
         static_cast<long long>(index.MaxAbsError()));

  // ---- Point lookups ----
  const uint64_t probe = keys[n / 3];
  const size_t pos = index.LowerBound(probe);
  printf("LowerBound(%llu) = %zu (key at pos: %llu)\n",
         static_cast<unsigned long long>(probe), pos,
         static_cast<unsigned long long>(keys[pos]));
  printf("Contains(probe)   = %s\n", index.Contains(probe) ? "yes" : "no");
  printf("Contains(probe+1) = %s\n", index.Contains(probe + 1) ? "yes" : "no");

  // ---- Range scan: all keys in [a, b) ----
  const uint64_t a = keys[n / 2], b = keys[n / 2 + 100];
  size_t count = 0;
  for (size_t i = index.LowerBound(a); i < keys.size() && keys[i] < b; ++i) {
    ++count;
  }
  printf("range [%llu, %llu) holds %zu keys\n",
         static_cast<unsigned long long>(a),
         static_cast<unsigned long long>(b), count);

  // ---- Compare with the B-Tree baseline ----
  btree::ReadOnlyBTree btree;
  if (const Status s = btree.Build(keys, 128); !s.ok()) {
    fprintf(stderr, "btree build failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const auto queries = data::SampleKeys(keys, 100'000);
  const double rmi_ns = lif::MeasureNsPerOp(
      queries, 2, [&](uint64_t q) { return index.LowerBound(q); });
  const double bt_ns = lif::MeasureNsPerOp(
      queries, 2, [&](uint64_t q) { return btree.LowerBound(q); });
  printf("\n            %12s %12s\n", "RMI", "B-Tree(128)");
  printf("lookup ns   %12.0f %12.0f\n", rmi_ns, bt_ns);
  printf("size MB     %12.2f %12.2f\n", index.SizeBytes() / 1e6,
         btree.SizeBytes() / 1e6);
  printf("speedup: %.2fx, size ratio: %.1fx smaller\n", bt_ns / rmi_ns,
         static_cast<double>(btree.SizeBytes()) / index.SizeBytes());
  return 0;
}
