// Figure 5: Learned Index vs alternative baselines on the Lognormal data
// with an 8-byte (pointer) payload:
//   * hierarchical lookup table with AVX-style branch-free search,
//   * FAST-style SIMD tree (power-of-2 allocation blow-up),
//   * fixed-size (1.5 MB budget) B-Tree with interpolation search,
//   * 2-stage RMI with a multivariate top model ("learned index without
//     framework overhead").

#include <cstdio>
#include <vector>

#include "btree/fast_tree.h"
#include "btree/interpolation_btree.h"
#include "btree/lookup_table.h"
#include "data/datasets.h"
#include "lif/measure.h"
#include "rmi/rmi.h"

using namespace li;

int main() {
  const size_t n = lif::BenchScaleKeys();
  printf("Figure 5 reproduction: alternative baselines (Lognormal, %zu keys)\n",
         n);
  const std::vector<uint64_t> keys = data::GenLognormal(n);
  const std::vector<uint64_t> queries = data::SampleKeys(keys, 200'000);

  // Learned index: multivariate top (auto feature selection), linear
  // leaves; budget-match the interpolation B-Tree to its size.
  rmi::RmiConfig config;
  config.num_leaf_models = std::max<size_t>(1000, n / 50);
  rmi::MultivariateRmi learned;
  if (!learned.Build(keys, config).ok()) {
    fprintf(stderr, "learned build failed\n");
    return 1;
  }
  const size_t learned_bytes = learned.SizeBytes();

  btree::LookupTable lookup;
  btree::FastTree fast;
  btree::InterpolationBTree interp;
  if (!lookup.Build(keys).ok() || !fast.Build(keys).ok() ||
      !interp.Build(keys, learned_bytes).ok()) {
    fprintf(stderr, "baseline build failed\n");
    return 1;
  }

  struct Entry {
    const char* name;
    double ns;
    double mb;
  };
  const Entry entries[] = {
      {"Lookup Table w/ AVX search",
       lif::MeasureNsPerOp(queries, 2,
                           [&](uint64_t q) { return lookup.LowerBound(q); }),
       lookup.SizeBytes() / 1e6},
      {"FAST",
       lif::MeasureNsPerOp(queries, 2,
                           [&](uint64_t q) { return fast.LowerBound(q); }),
       fast.SizeBytes() / 1e6},
      {"Fixed-Size Btree w/ interpolation search",
       lif::MeasureNsPerOp(queries, 2,
                           [&](uint64_t q) { return interp.LowerBound(q); }),
       interp.SizeBytes() / 1e6},
      {"Multivariate Learned Index",
       lif::MeasureNsPerOp(queries, 2,
                           [&](uint64_t q) { return learned.LowerBound(q); }),
       learned_bytes / 1e6},
  };

  lif::Table table({"Type", "Time (ns)", "Size (MB)"});
  for (const Entry& e : entries) {
    char ns[32], mb[32];
    snprintf(ns, sizeof(ns), "%.0f", e.ns);
    snprintf(mb, sizeof(mb), "%.2f", e.mb);
    table.AddRow({e.name, ns, mb});
  }
  table.Print();
  printf("(FAST size includes its power-of-2 allocation requirement: "
         "%.2f MB useful vs %.2f MB allocated)\n",
         fast.UsefulBytes() / 1e6, fast.SizeBytes() / 1e6);
  return 0;
}
