// Ablation (§3.7.1 quantization note): second-stage tables at float64 /
// float32 / int16 precision — size, lookup latency, and the error-bound
// widening the quantization costs. Correctness is preserved by folding the
// drift into the bounds.

#include <cstdio>
#include <vector>

#include "data/datasets.h"
#include "lif/measure.h"
#include "rmi/quantized_rmi.h"

using namespace li;

int main() {
  const size_t n = lif::BenchScaleKeys();
  printf("Quantized second-stage ablation (%zu keys)\n", n);
  lif::Table table({"Dataset", "Precision", "Size (MB)", "vs f64",
                    "Lookup (ns)"});

  for (const auto kind : {data::DatasetKind::kMaps,
                          data::DatasetKind::kLognormal}) {
    const auto keys = data::Generate(kind, n);
    const auto queries = data::SampleKeys(keys, 200'000);
    rmi::RmiConfig config;
    config.num_leaf_models = std::max<size_t>(1024, n / 100);

    double ref_mb = 0.0;
    for (const auto level :
         {models::QuantLevel::kFloat64, models::QuantLevel::kFloat32,
          models::QuantLevel::kInt16}) {
      rmi::QuantizedRmi index;
      if (!index.Build(keys, config, level).ok()) continue;
      const double mb = index.SizeBytes() / 1e6;
      if (level == models::QuantLevel::kFloat64) ref_mb = mb;
      const double ns = lif::MeasureNsPerOp(
          queries, 2, [&](uint64_t q) { return index.LowerBound(q); });
      char c1[32], c2[32], c3[32];
      snprintf(c1, sizeof(c1), "%.3f", mb);
      snprintf(c2, sizeof(c2), "%.2fx", mb / ref_mb);
      snprintf(c3, sizeof(c3), "%.0f", ns);
      table.AddRow({data::DatasetName(kind),
                    models::QuantLevelName(level), c1, c2, c3});
    }
  }
  table.Print();
  printf("(the paper: quantization \"can unlock additional gains for "
         "learned indexes\")\n");
  return 0;
}
