// §2.3: the naive learned index. The same 2x32 ReLU network is executed
// two ways — through a framework-like interpreted op graph with heap
// tensors and virtual dispatch (standing in for Tensorflow + Python
// invocation overhead), and through the compiled LIF-style kernel — and
// compared against a B-Tree traversal and full binary search. The paper's
// numbers: ~80,000 ns (TF), ~300 ns (B-Tree), ~900 ns (binary search),
// ~30 ns-class compiled models (§3.1).

#include <cstdio>
#include <vector>

#include "btree/readonly_btree.h"
#include "data/datasets.h"
#include "lif/measure.h"
#include "models/naive_executor.h"
#include "models/nn.h"
#include "search/search.h"

using namespace li;

int main() {
  const size_t n = lif::BenchScaleKeys();
  printf("Section 2.3 reproduction: naive learned index (%zu weblog keys)\n",
         n);
  const std::vector<uint64_t> keys = data::GenWeblog(n);
  std::vector<double> xs, ys;
  xs.reserve(n);
  ys.reserve(n);
  for (size_t i = 0; i < keys.size(); ++i) {
    xs.push_back(static_cast<double>(keys[i]));
    ys.push_back(static_cast<double>(i));
  }

  models::NNConfig config;
  config.hidden = {32, 32};  // the paper's two-layer, 32-wide net
  config.epochs = 10;
  models::NeuralNet net;
  if (!net.Fit(xs, ys, config).ok()) {
    fprintf(stderr, "training failed\n");
    return 1;
  }
  models::NaiveGraphExecutor naive(net);

  // The same contrast on a trivial model (0 hidden layers == linear
  // regression): the framework overhead is constant, so it dominates
  // completely — the §3.1 "30 ns compiled simple models" story.
  models::NNConfig lin_config;
  lin_config.epochs = 20;
  models::NeuralNet linear_net;
  if (!linear_net.Fit(xs, ys, lin_config).ok()) return 1;
  models::NaiveGraphExecutor naive_linear(linear_net);

  btree::ReadOnlyBTree btree;
  if (!btree.Build(keys, 128).ok()) return 1;

  const auto queries = data::SampleKeys(keys, 50'000);
  const double naive_ns = lif::MeasureNsPerOp(queries, 1, [&](uint64_t q) {
    return static_cast<uint64_t>(naive.Predict(static_cast<double>(q)));
  });
  const double compiled_ns = lif::MeasureNsPerOp(queries, 2, [&](uint64_t q) {
    return static_cast<uint64_t>(net.Predict(static_cast<double>(q)));
  });
  const double naive_lin_ns = lif::MeasureNsPerOp(queries, 1, [&](uint64_t q) {
    return static_cast<uint64_t>(naive_linear.Predict(static_cast<double>(q)));
  });
  const double compiled_lin_ns =
      lif::MeasureNsPerOp(queries, 2, [&](uint64_t q) {
        return static_cast<uint64_t>(
            linear_net.Predict(static_cast<double>(q)));
      });
  const double btree_ns = lif::MeasureNsPerOp(
      queries, 2, [&](uint64_t q) { return btree.LowerBound(q); });
  const double binary_ns = lif::MeasureNsPerOp(queries, 2, [&](uint64_t q) {
    return search::BinarySearch(keys.data(), 0, keys.size(), q);
  });

  lif::Table table({"Execution path", "ns / lookup", "vs compiled model"});
  auto add = [&](const char* name, double ns) {
    char c1[32], c2[32];
    snprintf(c1, sizeof(c1), "%.0f", ns);
    snprintf(c2, sizeof(c2), "%.1fx", ns / compiled_ns);
    table.AddRow({name, c1, c2});
  };
  add("framework-interpreted 2x32 NN (naive, a la TF)", naive_ns);
  add("compiled 2x32 NN (LIF codegen product)", compiled_ns);
  add("framework-interpreted linear model", naive_lin_ns);
  add("compiled linear model", compiled_lin_ns);
  add("B-Tree traversal (page 128)", btree_ns);
  add("binary search over all data", binary_ns);
  table.Print();
  printf("(model prediction alone does not include last-mile search; the\n"
         " naive path is dominated by per-op dispatch + allocation, the\n"
         " exact §2.3 failure mode)\n");
  return 0;
}
