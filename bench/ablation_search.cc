// Ablation (§3.4): search-strategy comparison at varying model error.
// Fixes an RMI per leaf-count (which controls the error band) and compares
// plain binary, model-biased binary, biased quaternary and exponential
// search on total lookup latency — the analysis behind Figure 6's "the
// different search strategies make a bigger difference [when search is
// expensive]".

#include <cstdio>
#include <vector>

#include "data/datasets.h"
#include "lif/measure.h"
#include "rmi/rmi.h"

using namespace li;

int main() {
  const size_t n = lif::BenchScaleKeys();
  printf("Search-strategy ablation (lognormal, %zu keys)\n", n);
  const std::vector<uint64_t> keys = data::GenLognormal(n);
  const auto queries = data::SampleKeys(keys, 200'000);

  lif::Table table({"2nd-stage models", "mean std-err", "binary ns",
                    "biased-binary ns", "biased-quaternary ns",
                    "exponential ns"});

  for (const size_t leaves : {1'000, 10'000, 100'000}) {
    double ns[4] = {0, 0, 0, 0};
    double err = 0;
    const search::Strategy strategies[] = {
        search::Strategy::kBinary, search::Strategy::kBiasedBinary,
        search::Strategy::kBiasedQuaternary, search::Strategy::kExponential};
    for (int s = 0; s < 4; ++s) {
      rmi::RmiConfig config;
      config.num_leaf_models = leaves;
      config.strategy = strategies[s];
      rmi::LinearRmi index;
      if (!index.Build(keys, config).ok()) continue;
      ns[s] = lif::MeasureNsPerOp(
          queries, 2, [&](uint64_t q) { return index.LowerBound(q); });
      err = index.MeanStdError();
    }
    char c0[32], c1[32], c2[32], c3[32], c4[32], c5[32];
    snprintf(c0, sizeof(c0), "%zu", leaves);
    snprintf(c1, sizeof(c1), "%.1f", err);
    snprintf(c2, sizeof(c2), "%.0f", ns[0]);
    snprintf(c3, sizeof(c3), "%.0f", ns[1]);
    snprintf(c4, sizeof(c4), "%.0f", ns[2]);
    snprintf(c5, sizeof(c5), "%.0f", ns[3]);
    table.AddRow({c0, c1, c2, c3, c4, c5});
  }
  table.Print();
  return 0;
}
