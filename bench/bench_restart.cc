// Restart-path bench: quantifies the tentpole claim of the snapshot
// subsystem — reopening a built index from its snapshot is orders of
// magnitude cheaper than rebuilding it from keys (docs/PERSISTENCE.md).
//
// The build leg runs in this process; the open leg re-execs this binary
// with --open-only so the mmap happens in a *fresh* process with a cold
// page-cache mapping of its own (the file pages are typically still warm
// in the kernel cache, which is exactly the steady-state restart
// scenario: the machine stayed up, the process died).
//
//   BENCH_RESTART_KEYS   key count (default 10'000'000)
//   BENCH_MICRO_JSON     unset = console only; "1" = BENCH_restart.json;
//                        other = that path (schema: docs/BENCHMARKS.md)

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "json_out.h"
#include "data/datasets.h"
#include "rmi/rmi.h"
#include "snapshot/snapshot.h"

namespace li {
namespace {

using Clock = std::chrono::steady_clock;

double NsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
}

size_t KeyCount() {
  const char* env = std::getenv("BENCH_RESTART_KEYS");
  if (env != nullptr && *env != '\0') {
    const long long n = std::atoll(env);
    if (n > 0) return static_cast<size_t>(n);
  }
  return 10'000'000;
}

rmi::RmiConfig ConfigFor(size_t n) {
  rmi::RmiConfig config;
  config.num_leaf_models = std::max<size_t>(64, n / 100);
  return config;
}

// ---- child: --open-only <path> <probe_key> ----
// Opens the snapshot, runs one lookup (the first-touch latency the
// restart path actually serves), and reports on stdout for the parent.
int OpenOnly(const char* path, uint64_t probe) {
  const auto t_open = Clock::now();
  auto reopened = rmi::LinearRmi::OpenSnapshot(path);
  const double open_ns = NsSince(t_open);
  if (!reopened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 reopened.status().message().c_str());
    return 1;
  }
  const auto t_first = Clock::now();
  const size_t rank = reopened.value().LowerBound(probe);
  const double first_ns = NsSince(t_first);
  // The reader maps the whole file, so mapped bytes == file size.
  struct stat st {};
  const size_t mapped = ::stat(path, &st) == 0
                            ? static_cast<size_t>(st.st_size)
                            : 0;
  std::printf("open_ns=%.0f first_lookup_ns=%.0f mapped_bytes=%zu rank=%zu\n",
              open_ns, first_ns, mapped, rank);
  return 0;
}

int Run(const char* self) {
  const size_t n = KeyCount();
  std::printf("bench_restart: %zu keys\n", n);
  const auto keys = data::GenLognormal(n, 13);
  const uint64_t probe = keys[keys.size() / 2];

  // Build leg: the full from-keys construction the snapshot replaces.
  const auto t_build = Clock::now();
  rmi::LinearRmi built;
  if (Status st = built.Build(keys, ConfigFor(n)); !st.ok()) {
    std::fprintf(stderr, "build failed: %s\n", st.message().c_str());
    return 1;
  }
  const double build_ns = NsSince(t_build);
  const size_t want_rank = built.LowerBound(probe);

  const std::string snap = "bench_restart.snap";
  if (Status st = built.WriteSnapshot(snap); !st.ok()) {
    std::fprintf(stderr, "snapshot failed: %s\n", st.message().c_str());
    return 1;
  }

  // Open leg: fresh process, zero-copy open, one lookup.
  const std::string cmd =
      std::string(self) + " --open-only " + snap + " " + std::to_string(probe);
  FILE* child = popen(cmd.c_str(), "r");
  if (child == nullptr) {
    std::fprintf(stderr, "popen failed\n");
    return 1;
  }
  double open_ns = 0.0, first_ns = 0.0;
  size_t mapped = 0, got_rank = static_cast<size_t>(-1);
  char line[256];
  while (std::fgets(line, sizeof(line), child) != nullptr) {
    std::sscanf(line, "open_ns=%lf first_lookup_ns=%lf mapped_bytes=%zu rank=%zu",
                &open_ns, &first_ns, &mapped, &got_rank);
  }
  if (pclose(child) != 0 || open_ns <= 0.0) {
    std::fprintf(stderr, "open-only child failed\n");
    return 1;
  }
  if (got_rank != want_rank) {
    std::fprintf(stderr, "reopened lookup diverged: %zu != %zu\n", got_rank,
                 want_rank);
    return 1;
  }

  const double speedup = build_ns / open_ns;
  std::printf("build      %12.0f ns\n", build_ns);
  std::printf("open       %12.0f ns  (%.0fx faster than build)\n", open_ns,
              speedup);
  std::printf("first hit  %12.0f ns\n", first_ns);
  std::printf("mapped     %12zu bytes\n", mapped);

  if (std::getenv("BENCH_MICRO_JSON") != nullptr) {
    // Schema note (docs/BENCHMARKS.md): ns_per_op carries each leg's
    // wall time; for the two dimensionless rows it carries the ratio
    // (RestartSpeedup) and the byte count (RestartMappedBytes).
    std::vector<bench_json::Entry> json;
    json.push_back({"RestartBuild", build_ns, n / (build_ns / 1e9)});
    json.push_back({"RestartOpen", open_ns, n / (open_ns / 1e9)});
    json.push_back({"RestartFirstLookup", first_ns,
                    first_ns > 0.0 ? 1e9 / first_ns : 0.0});
    json.push_back({"RestartMappedBytes", static_cast<double>(mapped), 0.0});
    json.push_back({"RestartSpeedup", speedup, 0.0});
    const char* path = bench_json::ResolvePath(std::getenv("BENCH_MICRO_JSON"),
                                               "BENCH_restart.json");
    if (bench_json::Write(path, json)) {
      std::printf("wrote %s\n", path);
    } else {
      std::fprintf(stderr, "failed to write %s\n", path);
      return 1;
    }
  }
  std::remove(snap.c_str());
  return 0;
}

}  // namespace
}  // namespace li

int main(int argc, char** argv) {
  if (argc == 4 && std::strcmp(argv[1], "--open-only") == 0) {
    return li::OpenOnly(argv[2],
                        std::strtoull(argv[3], nullptr, 10));
  }
  return li::Run(argv[0]);
}
