// Ablation (§2.1 cost model + §3.7.1 grid search): top-model complexity
// frontier. For each top-model family we report model ops, model ns, mean
// leaf error, total lookup ns and index size — the precision-gain vs
// arithmetic-cost trade the paper's back-of-envelope analysis (400 ops per
// 1/100 precision gain) is about. Runs on the hardest dataset (weblog).

#include <cstdio>
#include <vector>

#include "data/datasets.h"
#include "lif/measure.h"
#include "rmi/rmi.h"

using namespace li;

namespace {

template <typename TopModel>
void Run(const char* name, const std::vector<uint64_t>& keys,
         const std::vector<uint64_t>& queries, const rmi::RmiConfig& config,
         size_t ops, lif::Table* table) {
  rmi::Rmi<TopModel> index;
  if (!index.Build(keys, config).ok()) return;
  const double model_ns = lif::MeasureNsPerOp(
      queries, 2, [&](uint64_t q) { return index.Predict(q).pos; });
  const double lookup_ns = lif::MeasureNsPerOp(
      queries, 2, [&](uint64_t q) { return index.LowerBound(q); });
  char c1[32], c2[32], c3[32], c4[32], c5[32];
  snprintf(c1, sizeof(c1), "%zu", ops);
  snprintf(c2, sizeof(c2), "%.0f", model_ns);
  snprintf(c3, sizeof(c3), "%.1f", index.MeanStdError());
  snprintf(c4, sizeof(c4), "%.0f", lookup_ns);
  snprintf(c5, sizeof(c5), "%.2f", index.SizeBytes() / 1e6);
  table->AddRow({name, c1, c2, c3, c4, c5});
}

}  // namespace

int main() {
  const size_t n = lif::BenchScaleKeys();
  printf("Top-model complexity ablation (weblog, %zu keys, 10k leaves)\n", n);
  const std::vector<uint64_t> keys = data::GenWeblog(n);
  const auto queries = data::SampleKeys(keys, 200'000);

  lif::Table table({"Top model", "~ops", "model ns", "mean leaf std-err",
                    "lookup ns", "size MB"});
  rmi::RmiConfig base;
  base.num_leaf_models = 10'000;

  Run<models::LinearModel>("linear", keys, queries, base, 2, &table);
  Run<models::MultivariateModel>("multivariate (auto features)", keys,
                                 queries, base, 10, &table);
  {
    rmi::RmiConfig config = base;
    config.train.nn.hidden = {8};
    config.train.nn.epochs = 12;
    Run<models::NeuralNet>("nn 1x8", keys, queries, config, 2 * 8 * 2, &table);
  }
  {
    rmi::RmiConfig config = base;
    config.train.nn.hidden = {16};
    config.train.nn.epochs = 12;
    Run<models::NeuralNet>("nn 1x16", keys, queries, config, 2 * 16 * 2,
                           &table);
  }
  {
    rmi::RmiConfig config = base;
    config.train.nn.hidden = {16, 16};
    config.train.nn.epochs = 12;
    Run<models::NeuralNet>("nn 16x16", keys, queries, config,
                           2 * (16 + 16 * 16 + 16), &table);
  }
  {
    rmi::RmiConfig config = base;
    config.train.nn.hidden = {32, 32};
    config.train.nn.epochs = 12;
    Run<models::NeuralNet>("nn 32x32", keys, queries, config,
                           2 * (32 + 32 * 32 + 32), &table);
  }
  table.Print();
  printf("(§2.1: a model beats a B-Tree page descent if it gains >1/100\n"
         " precision per ~400 arithmetic ops)\n");
  return 0;
}
