// Table 1 (Appendix C): hash-map architecture alternatives on lognormal
// keys —
//   * AVX-style cuckoo map with 32-bit values (99% utilization target),
//   * AVX-style cuckoo map with 20-byte records,
//   * "commercial" cuckoo map (corner-case handling, 95% utilization),
//   * in-place chained map with a learned hash function (100% utilization).

#include <cstdio>
#include <vector>

#include "data/datasets.h"
#include "hash/cuckoo_map.h"
#include "hash/hash_fn.h"
#include "hash/inplace_chained_map.h"
#include "lif/measure.h"

using namespace li;

int main() {
  const size_t n = lif::BenchScaleKeys();
  printf("Table 1 reproduction: hash map alternatives (lognormal, %zu keys)\n",
         n);
  const std::vector<uint64_t> keys = data::GenLognormal(n);
  const auto probes = data::SampleKeys(keys, 200'000);

  lif::Table table({"Type", "Time (ns)", "Utilization"});
  auto add = [&](const char* name, double ns, double util) {
    char t[32], u[32];
    snprintf(t, sizeof(t), "%.0f", ns);
    snprintf(u, sizeof(u), "%.0f%%", 100.0 * util);
    table.AddRow({name, t, u});
  };

  {
    std::vector<uint32_t> values(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      values[i] = static_cast<uint32_t>(i);
    }
    hash::CuckooMap<uint32_t> map;
    hash::CuckooMap<uint32_t>::Config config;
    config.load_factor = 0.99;
    if (map.Build(keys, values, config).ok()) {
      add("AVX Cuckoo, 32-bit value",
          lif::MeasureNsPerOp(probes, 1,
                              [&](uint64_t q) { return map.Find(q) != nullptr; }),
          map.utilization());
    }
  }
  {
    std::vector<hash::Record> values(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) values[i] = {keys[i], i, 0};
    hash::CuckooMap<hash::Record> map;
    hash::CuckooMap<hash::Record>::Config config;
    config.load_factor = 0.99;
    if (map.Build(keys, values, config).ok()) {
      add("AVX Cuckoo, 20 Byte record",
          lif::MeasureNsPerOp(probes, 1,
                              [&](uint64_t q) { return map.Find(q) != nullptr; }),
          map.utilization());
    }
  }
  {
    std::vector<hash::Record> values(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) values[i] = {keys[i], i, 0};
    hash::CuckooMap<hash::Record> map;
    hash::CuckooMap<hash::Record>::Config config;
    config.load_factor = 0.95;
    config.careful = true;
    if (map.Build(keys, values, config).ok()) {
      add("Comm. Cuckoo, 20 Byte record",
          lif::MeasureNsPerOp(probes, 1,
                              [&](uint64_t q) { return map.Find(q) != nullptr; }),
          map.utilization());
    }
  }
  {
    std::vector<hash::Record> records;
    records.reserve(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      records.push_back({keys[i], i, 0});
    }
    hash::LearnedHash<models::LinearModel> learned_fn;
    rmi::RmiConfig config;
    config.num_leaf_models = std::min<size_t>(100'000, keys.size() / 10);
    hash::InplaceChainedMap<hash::LearnedHash<models::LinearModel>> map;
    if (learned_fn.Build(keys, keys.size(), config).ok() &&
        map.Build(records, learned_fn).ok()) {
      add("In-place chained w/ learned hash, record",
          lif::MeasureNsPerOp(probes, 1,
                              [&](uint64_t q) { return map.Find(q) != nullptr; }),
          map.utilization());
    }
  }
  table.Print();
  return 0;
}
