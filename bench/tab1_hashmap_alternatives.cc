// Table 1 (Appendix C): hash-map architecture alternatives on lognormal
// keys —
//   * AVX-style cuckoo map with 32-bit values (99% utilization target),
//   * AVX-style cuckoo map with 20-byte records,
//   * "commercial" cuckoo map (corner-case handling, 95% utilization),
//   * in-place chained map with a learned hash function (100% utilization).
// The record-valued variants are built through the PointIndex contract
// (record-span Build, hash family in the config); the 32-bit-value row
// keeps the raw key/value Build the contract does not cover.

#include <cstdio>
#include <type_traits>
#include <vector>

#include "data/datasets.h"
#include "hash/cuckoo_map.h"
#include "hash/inplace_chained_map.h"
#include "lif/measure.h"

using namespace li;

int main() {
  const size_t n = lif::BenchScaleKeys();
  printf("Table 1 reproduction: hash map alternatives (lognormal, %zu keys)\n",
         n);
  const std::vector<uint64_t> keys = data::GenLognormal(n);
  const auto probes = data::SampleKeys(keys, 200'000);
  std::vector<hash::Record> records;
  records.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    records.push_back({keys[i], i, 0});
  }

  lif::Table table({"Type", "Time (ns)", "Batch (ns)", "Utilization"});
  auto add = [&](const char* name, double ns, double batch, double util) {
    char t[32], b[32], u[32];
    snprintf(t, sizeof(t), "%.0f", ns);
    snprintf(b, sizeof(b), "%.0f", batch);
    snprintf(u, sizeof(u), "%.0f%%", 100.0 * util);
    table.AddRow({name, t, b, u});
  };
  auto time_map = [&](const char* name, const auto& map, double util) {
    using ValueT = std::remove_pointer_t<
        decltype(map.Find(uint64_t{}))>;
    const double ns = lif::MeasureNsPerOp(
        probes, 1, [&](uint64_t q) { return map.Find(q) != nullptr; });
    std::vector<const ValueT*> out(probes.size());
    const double batch = lif::MeasureBatchNsPerOp(probes.size(), [&] {
      map.FindBatch(probes, out);
      return out.data();
    });
    add(name, ns, batch, util);
  };

  {
    std::vector<uint32_t> values(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      values[i] = static_cast<uint32_t>(i);
    }
    hash::CuckooMap<uint32_t> map;
    hash::CuckooMapConfig config;
    config.load_factor = 0.99;
    if (map.Build(keys, values, config).ok()) {
      time_map("AVX Cuckoo, 32-bit value", map, map.utilization());
    }
  }
  {
    hash::CuckooMap<hash::Record> map;
    hash::CuckooMapConfig config;
    config.load_factor = 0.99;
    if (map.Build(records, config).ok()) {
      time_map("AVX Cuckoo, 20 Byte record", map, map.utilization());
    }
  }
  {
    hash::CuckooMap<hash::Record> map;
    hash::CuckooMapConfig config;
    config.load_factor = 0.95;
    config.careful = true;
    if (map.Build(records, config).ok()) {
      time_map("Comm. Cuckoo, 20 Byte record", map, map.utilization());
    }
  }
  {
    hash::InplaceChainedMapConfig config;
    config.hash.kind = hash::HashKind::kLearnedCdf;
    config.hash.cdf_leaf_models = std::min<size_t>(100'000, keys.size() / 10);
    hash::InplaceChainedMap map;
    if (map.Build(records, config).ok()) {
      time_map("In-place chained w/ learned hash, record", map,
               map.utilization());
    }
  }
  table.Print();
  return 0;
}
