// google-benchmark microbenchmarks for the primitive operations the paper
// reasons about in §2.1/§3.1: model inference kernels (linear,
// multivariate, NNs of increasing width), B-Tree page descents, the search
// strategies, hash functions, and the point-index probe paths (single-key
// vs software-pipelined FindBatch). These are the "30 ns-class model
// execution" numbers.
//
// Set BENCH_MICRO_JSON=<path> (or =1 for ./BENCH_micro.json) to also emit
// the shared bench_json document (see bench/json_out.h), so the perf
// trajectory accumulates across PRs.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "json_out.h"
#include "btree/readonly_btree.h"
#include "data/datasets.h"
#include "hash/chained_hash_map.h"
#include "hash/cuckoo_map.h"
#include "hash/hash_fn.h"
#include "index/approx.h"
#include "models/linear.h"
#include "models/multivariate.h"
#include "models/nn.h"
#include "rmi/rmi.h"
#include "search/search.h"
#include "simd/dispatch.h"

using namespace li;

namespace {

const std::vector<uint64_t>& Keys() {
  static const std::vector<uint64_t> keys = data::GenLognormal(1'000'000);
  return keys;
}

const std::vector<uint64_t>& Queries() {
  static const std::vector<uint64_t> queries =
      data::SampleKeys(Keys(), 1 << 16);
  return queries;
}

void BM_LinearModelPredict(benchmark::State& state) {
  models::LinearModel model(1e-6, 42.0);
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.Predict(static_cast<double>(qs[i++ & 0xFFFF])));
  }
}
BENCHMARK(BM_LinearModelPredict);

void BM_MultivariatePredict(benchmark::State& state) {
  std::vector<double> xs, ys;
  for (size_t i = 0; i < Keys().size(); i += 100) {
    xs.push_back(static_cast<double>(Keys()[i]));
    ys.push_back(static_cast<double>(i));
  }
  models::MultivariateModel model;
  if (!model.FitAutoSelect(xs, ys).ok()) {
    state.SkipWithError("fit failed");
    return;
  }
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.Predict(static_cast<double>(qs[i++ & 0xFFFF])));
  }
}
BENCHMARK(BM_MultivariatePredict);

void BM_NNPredict(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const int layers = static_cast<int>(state.range(1));
  std::vector<double> xs, ys;
  for (size_t i = 0; i < Keys().size(); i += 100) {
    xs.push_back(static_cast<double>(Keys()[i]));
    ys.push_back(static_cast<double>(i));
  }
  models::NNConfig config;
  for (int l = 0; l < layers; ++l) config.hidden.push_back(width);
  config.epochs = 2;
  models::NeuralNet net;
  if (!net.Fit(xs, ys, config).ok()) {
    state.SkipWithError("fit failed");
    return;
  }
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net.Predict(static_cast<double>(qs[i++ & 0xFFFF])));
  }
}
BENCHMARK(BM_NNPredict)->Args({8, 1})->Args({16, 1})->Args({32, 2});

void BM_RmiPredict(benchmark::State& state) {
  rmi::RmiConfig config;
  config.num_leaf_models = static_cast<size_t>(state.range(0));
  static rmi::LinearRmi* index = nullptr;
  rmi::LinearRmi local;
  if (!local.Build(Keys(), config).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  index = &local;
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->Predict(qs[i++ & 0xFFFF]).pos);
  }
}
BENCHMARK(BM_RmiPredict)->Arg(10'000)->Arg(100'000);

void BM_RmiLowerBound(benchmark::State& state) {
  rmi::RmiConfig config;
  config.num_leaf_models = static_cast<size_t>(state.range(0));
  rmi::LinearRmi index;
  if (!index.Build(Keys(), config).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.LowerBound(qs[i++ & 0xFFFF]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RmiLowerBound)->Arg(10'000)->Arg(100'000);

// Batched vs. single-key lookups (compare items_per_second against
// BM_RmiLowerBound): the batch path software-pipelines route / predict /
// search over 16-key blocks so neighboring cache misses overlap.
void BM_RmiLookupBatch(benchmark::State& state) {
  rmi::RmiConfig config;
  config.num_leaf_models = static_cast<size_t>(state.range(0));
  rmi::LinearRmi index;
  if (!index.Build(Keys(), config).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  const auto& qs = Queries();
  std::vector<size_t> out(qs.size());
  for (auto _ : state) {
    index.LookupBatch(qs, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(qs.size()));
}
BENCHMARK(BM_RmiLookupBatch)->Arg(10'000)->Arg(100'000);

// ---- Per-dispatch-level kernels: scalar vs AVX2 vs AVX-512 --------------
// Each *_AtLevel bench pins the SIMD dispatch level for its run (level 0 =
// scalar = the pipelined per-key path, 1 = avx2, 2 = avx512) so
// BENCH_micro.json carries a scalar-vs-vector column per primitive.
// Unsupported levels skip rather than silently falling back, so a missing
// entry means "this host/build can't run it", never a mislabeled number.

// 100k leaves over 1M keys — the paper's serving-scale leaf budget (and
// the same budget BuiltLearnedHash uses), where per-leaf error windows are
// tight enough that the σ-sub-window sweep does the last mile in one pass.
const rmi::LinearRmi* BuiltRmi() {
  static const auto* index = []() -> const rmi::LinearRmi* {
    auto idx = std::make_unique<rmi::LinearRmi>();
    rmi::RmiConfig config;
    config.num_leaf_models = 100'000;
    if (!idx->Build(Keys(), config).ok()) return nullptr;
    return idx.release();
  }();
  return index;
}

bool PinLevelOrSkip(benchmark::State& state, simd::ScopedLevel& pin) {
  if (!pin.status().ok()) {
    state.SkipWithError("dispatch level unsupported on this host/build");
    return false;
  }
  return true;
}

// The tentpole comparison: batched lookups per level x batch size. The
// level-0 row is the pre-SIMD pipelined scalar path (the acceptance
// baseline); batch sizes must divide the 65536-query pool.
void BM_RmiLookupBatchAtLevel(benchmark::State& state) {
  const auto level = static_cast<simd::Level>(state.range(0));
  const size_t batch = static_cast<size_t>(state.range(1));
  const auto* index = BuiltRmi();
  if (index == nullptr) {
    state.SkipWithError("build failed");
    return;
  }
  simd::ScopedLevel pin(level);
  if (!PinLevelOrSkip(state, pin)) return;
  const auto& qs = Queries();
  std::vector<size_t> out(batch);
  size_t off = 0;
  for (auto _ : state) {
    index->LookupBatch(std::span(qs).subspan(off, batch), out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
    off = (off + batch) & (qs.size() - 1);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_RmiLookupBatchAtLevel)
    ->ArgNames({"level", "batch"})
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({2, 64})
    ->Args({0, 1024})
    ->Args({1, 1024})
    ->Args({2, 1024})
    ->Args({0, 65536})
    ->Args({1, 65536})
    ->Args({2, 65536});

// Model execution only (route + leaf predict, no search) per level.
void BM_RmiPredictBatchAtLevel(benchmark::State& state) {
  const auto level = static_cast<simd::Level>(state.range(0));
  const auto* index = BuiltRmi();
  if (index == nullptr) {
    state.SkipWithError("build failed");
    return;
  }
  simd::ScopedLevel pin(level);
  if (!PinLevelOrSkip(state, pin)) return;
  const auto& qs = Queries();
  std::vector<uint64_t> pos(qs.size());
  for (auto _ : state) {
    index->PredictPosBatch(qs, pos);
    benchmark::DoNotOptimize(pos.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(qs.size()));
}
BENCHMARK(BM_RmiPredictBatchAtLevel)
    ->ArgNames({"level"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2);

// The bounded last mile alone: branchless compare-and-popcount search per
// level over precomputed prediction windows (compare against
// BM_LastMileScalarStrategy, the per-key biased-binary baseline).
const std::vector<index::Approx>& QueryWindows() {
  static const std::vector<index::Approx> windows = [] {
    std::vector<index::Approx> w;
    const auto* index = BuiltRmi();
    if (index == nullptr) return w;
    const auto& qs = Queries();
    w.reserve(qs.size());
    for (const uint64_t q : qs) w.push_back(index->ApproxPos(q));
    return w;
  }();
  return windows;
}

void BM_LastMileScalarStrategy(benchmark::State& state) {
  const auto& windows = QueryWindows();
  if (windows.empty()) {
    state.SkipWithError("build failed");
    return;
  }
  const auto& keys = Keys();
  const auto& qs = Queries();
  size_t i = 0;
  for (auto _ : state) {
    const size_t j = i++ & 0xFFFF;
    benchmark::DoNotOptimize(
        search::FindInWindow(search::Strategy::kBiasedBinary, keys.data(),
                             keys.size(), qs[j], windows[j]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LastMileScalarStrategy);

void BM_LastMileAtLevel(benchmark::State& state) {
  const auto level = static_cast<simd::Level>(state.range(0));
  const auto& windows = QueryWindows();
  if (windows.empty()) {
    state.SkipWithError("build failed");
    return;
  }
  simd::ScopedLevel pin(level);
  if (!PinLevelOrSkip(state, pin)) return;
  const simd::Kernels& kern = simd::GetKernels();
  const auto& keys = Keys();
  const auto& qs = Queries();
  size_t i = 0;
  for (auto _ : state) {
    const size_t j = i++ & 0xFFFF;
    benchmark::DoNotOptimize(search::FindInWindowBranchless(
        kern, keys.data(), keys.size(), qs[j], windows[j]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LastMileAtLevel)->ArgNames({"level"})->Arg(0)->Arg(1)->Arg(2);

void BM_BTreeFindPage(benchmark::State& state) {
  btree::ReadOnlyBTree tree;
  if (!tree.Build(Keys(), static_cast<size_t>(state.range(0))).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.FindPage(qs[i++ & 0xFFFF]));
  }
}
BENCHMARK(BM_BTreeFindPage)->Arg(32)->Arg(128)->Arg(512);

void BM_BTreeLowerBound(benchmark::State& state) {
  btree::ReadOnlyBTree tree;
  if (!tree.Build(Keys(), static_cast<size_t>(state.range(0))).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.LowerBound(qs[i++ & 0xFFFF]));
  }
}
BENCHMARK(BM_BTreeLowerBound)->Arg(32)->Arg(128)->Arg(512);

void BM_FullBinarySearch(benchmark::State& state) {
  size_t i = 0;
  const auto& keys = Keys();
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        search::BinarySearch(keys.data(), 0, keys.size(), qs[i++ & 0xFFFF]));
  }
}
BENCHMARK(BM_FullBinarySearch);

void BM_MurmurHash(benchmark::State& state) {
  hash::RandomHash h(Keys().size(), 3);
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(qs[i++ & 0xFFFF]));
  }
}
BENCHMARK(BM_MurmurHash);

// Shared fixtures build once and return nullptr on failure so one broken
// build skips its benchmarks instead of killing the whole process.
const hash::LearnedHash<models::LinearModel>* BuiltLearnedHash() {
  static const auto* h =
      []() -> const hash::LearnedHash<models::LinearModel>* {
    auto fn = std::make_unique<hash::LearnedHash<models::LinearModel>>();
    rmi::RmiConfig config;
    config.num_leaf_models = 100'000;
    if (!fn->Build(Keys(), Keys().size(), config).ok()) return nullptr;
    return fn.release();
  }();
  return h;
}

// The shipped path: fixed-point multiplicative rescale of the CDF
// position (multiply + shift per lookup).
void BM_LearnedHash(benchmark::State& state) {
  const auto* h = BuiltLearnedHash();
  if (h == nullptr) {
    state.SkipWithError("build failed");
    return;
  }
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize((*h)(qs[i++ & 0xFFFF]));
  }
}
BENCHMARK(BM_LearnedHash);

// The pre-optimization reference: per-lookup 128-bit division
// ((pos * M) / N). Compare against BM_LearnedHash for the rescale delta.
void BM_LearnedHashDivision(benchmark::State& state) {
  const auto* h = BuiltLearnedHash();
  if (h == nullptr) {
    state.SkipWithError("build failed");
    return;
  }
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(h->SlotViaDivision(qs[i++ & 0xFFFF]));
  }
}
BENCHMARK(BM_LearnedHashDivision);

// Vectorized CDF-model slot batches per dispatch level (compare against
// BM_LearnedHash, the single-key path).
void BM_LearnedHashSlotBatchAtLevel(benchmark::State& state) {
  const auto level = static_cast<simd::Level>(state.range(0));
  const auto* h = BuiltLearnedHash();
  if (h == nullptr) {
    state.SkipWithError("build failed");
    return;
  }
  simd::ScopedLevel pin(level);
  if (!PinLevelOrSkip(state, pin)) return;
  const auto& qs = Queries();
  std::vector<uint64_t> slots(qs.size());
  for (auto _ : state) {
    h->SlotBatch(qs.data(), qs.size(), slots.data());
    benchmark::DoNotOptimize(slots.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(qs.size()));
}
BENCHMARK(BM_LearnedHashSlotBatchAtLevel)
    ->ArgNames({"level"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2);

// ---- Point-index probe paths: single-key Find vs pipelined FindBatch ----

const std::vector<hash::Record>& MapRecords() {
  static const std::vector<hash::Record> records = [] {
    std::vector<hash::Record> r;
    r.reserve(Keys().size());
    for (size_t i = 0; i < Keys().size(); ++i) {
      r.push_back({Keys()[i], i, 0});
    }
    return r;
  }();
  return records;
}

const hash::ChainedHashMap* BuiltChainedMap() {
  static const auto* map = []() -> const hash::ChainedHashMap* {
    auto m = std::make_unique<hash::ChainedHashMap>();
    hash::ChainedHashMapConfig config;
    config.hash.kind = hash::HashKind::kRandom;
    config.hash.seed = 3;
    if (!m->Build(MapRecords(), config).ok()) return nullptr;
    return m.release();
  }();
  return map;
}

void BM_ChainedMapFind(benchmark::State& state) {
  const auto* map = BuiltChainedMap();
  if (map == nullptr) {
    state.SkipWithError("build failed");
    return;
  }
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(map->Find(qs[i++ & 0xFFFF]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChainedMapFind);

// Compare items_per_second against BM_ChainedMapFind: per 16-key block,
// hashes + prefetches every home slot before probing, so neighboring
// cache misses overlap (acceptance bar: >= 1.2x the single-key path).
void BM_ChainedMapFindBatch(benchmark::State& state) {
  const auto* map = BuiltChainedMap();
  if (map == nullptr) {
    state.SkipWithError("build failed");
    return;
  }
  const auto& qs = Queries();
  std::vector<const hash::Record*> out(qs.size());
  for (auto _ : state) {
    map->FindBatch(qs, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(qs.size()));
}
BENCHMARK(BM_ChainedMapFindBatch);

const hash::CuckooMap<hash::Record>* BuiltCuckooMap() {
  static const auto* map = []() -> const hash::CuckooMap<hash::Record>* {
    auto m = std::make_unique<hash::CuckooMap<hash::Record>>();
    hash::CuckooMapConfig config;
    config.load_factor = 0.95;
    if (!m->Build(MapRecords(), config).ok()) return nullptr;
    return m.release();
  }();
  return map;
}

void BM_CuckooMapFind(benchmark::State& state) {
  const auto* map = BuiltCuckooMap();
  if (map == nullptr) {
    state.SkipWithError("build failed");
    return;
  }
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(map->Find(qs[i++ & 0xFFFF]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CuckooMapFind);

void BM_CuckooMapFindBatch(benchmark::State& state) {
  const auto* map = BuiltCuckooMap();
  if (map == nullptr) {
    state.SkipWithError("build failed");
    return;
  }
  const auto& qs = Queries();
  std::vector<const hash::Record*> out(qs.size());
  for (auto _ : state) {
    map->FindBatch(qs, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(qs.size()));
}
BENCHMARK(BM_CuckooMapFindBatch);

// Per-level map probes: the batch slot computation vectorizes with the
// dispatch level while the chain walk / bucket probe stays memory-bound,
// so the level deltas here bound how much of FindBatch is compute.
void BM_ChainedMapFindBatchAtLevel(benchmark::State& state) {
  const auto level = static_cast<simd::Level>(state.range(0));
  const auto* map = BuiltChainedMap();
  if (map == nullptr) {
    state.SkipWithError("build failed");
    return;
  }
  simd::ScopedLevel pin(level);
  if (!PinLevelOrSkip(state, pin)) return;
  const auto& qs = Queries();
  std::vector<const hash::Record*> out(qs.size());
  for (auto _ : state) {
    map->FindBatch(qs, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(qs.size()));
}
BENCHMARK(BM_ChainedMapFindBatchAtLevel)
    ->ArgNames({"level"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2);

void BM_CuckooMapFindBatchAtLevel(benchmark::State& state) {
  const auto level = static_cast<simd::Level>(state.range(0));
  const auto* map = BuiltCuckooMap();
  if (map == nullptr) {
    state.SkipWithError("build failed");
    return;
  }
  simd::ScopedLevel pin(level);
  if (!PinLevelOrSkip(state, pin)) return;
  const auto& qs = Queries();
  std::vector<const hash::Record*> out(qs.size());
  for (auto _ : state) {
    map->FindBatch(qs, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(qs.size()));
}
BENCHMARK(BM_CuckooMapFindBatchAtLevel)
    ->ArgNames({"level"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2);

// ---- optional machine-readable output (BENCH_micro.json) ----

// Console output stays the default; when BENCH_MICRO_JSON is set, every
// per-iteration result is also collected and written through the shared
// bench_json emitter on exit.
class JsonEmittingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      bench_json::Entry e;
      e.name = run.benchmark_name();
      e.ns_per_op = run.GetAdjustedRealTime();  // default unit: ns
      const auto it = run.counters.find("items_per_second");
      e.items_per_second =
          it != run.counters.end() ? static_cast<double>(it->second) : 0.0;
      entries_.push_back(std::move(e));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  bool WriteJson(const char* path) const {
    return bench_json::Write(path, entries_);
  }

 private:
  std::vector<bench_json::Entry> entries_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const char* json_env = getenv("BENCH_MICRO_JSON");
  if (json_env == nullptr) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    const char* path = bench_json::ResolvePath(json_env, "BENCH_micro.json");
    JsonEmittingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    if (reporter.WriteJson(path)) {
      fprintf(stderr, "wrote %s\n", path);
    } else {
      fprintf(stderr, "failed to write %s\n", path);
    }
  }
  benchmark::Shutdown();
  return 0;
}
