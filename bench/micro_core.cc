// google-benchmark microbenchmarks for the primitive operations the paper
// reasons about in §2.1/§3.1: model inference kernels (linear,
// multivariate, NNs of increasing width), B-Tree page descents, the search
// strategies, and hash functions. These are the "30 ns-class model
// execution" numbers.

#include <benchmark/benchmark.h>

#include <vector>

#include "btree/readonly_btree.h"
#include "data/datasets.h"
#include "hash/hash_fn.h"
#include "models/linear.h"
#include "models/multivariate.h"
#include "models/nn.h"
#include "rmi/rmi.h"
#include "search/search.h"

using namespace li;

namespace {

const std::vector<uint64_t>& Keys() {
  static const std::vector<uint64_t> keys = data::GenLognormal(1'000'000);
  return keys;
}

const std::vector<uint64_t>& Queries() {
  static const std::vector<uint64_t> queries =
      data::SampleKeys(Keys(), 1 << 16);
  return queries;
}

void BM_LinearModelPredict(benchmark::State& state) {
  models::LinearModel model(1e-6, 42.0);
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.Predict(static_cast<double>(qs[i++ & 0xFFFF])));
  }
}
BENCHMARK(BM_LinearModelPredict);

void BM_MultivariatePredict(benchmark::State& state) {
  std::vector<double> xs, ys;
  for (size_t i = 0; i < Keys().size(); i += 100) {
    xs.push_back(static_cast<double>(Keys()[i]));
    ys.push_back(static_cast<double>(i));
  }
  models::MultivariateModel model;
  if (!model.FitAutoSelect(xs, ys).ok()) {
    state.SkipWithError("fit failed");
    return;
  }
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.Predict(static_cast<double>(qs[i++ & 0xFFFF])));
  }
}
BENCHMARK(BM_MultivariatePredict);

void BM_NNPredict(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const int layers = static_cast<int>(state.range(1));
  std::vector<double> xs, ys;
  for (size_t i = 0; i < Keys().size(); i += 100) {
    xs.push_back(static_cast<double>(Keys()[i]));
    ys.push_back(static_cast<double>(i));
  }
  models::NNConfig config;
  for (int l = 0; l < layers; ++l) config.hidden.push_back(width);
  config.epochs = 2;
  models::NeuralNet net;
  if (!net.Fit(xs, ys, config).ok()) {
    state.SkipWithError("fit failed");
    return;
  }
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net.Predict(static_cast<double>(qs[i++ & 0xFFFF])));
  }
}
BENCHMARK(BM_NNPredict)->Args({8, 1})->Args({16, 1})->Args({32, 2});

void BM_RmiPredict(benchmark::State& state) {
  rmi::RmiConfig config;
  config.num_leaf_models = static_cast<size_t>(state.range(0));
  static rmi::LinearRmi* index = nullptr;
  rmi::LinearRmi local;
  if (!local.Build(Keys(), config).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  index = &local;
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->Predict(qs[i++ & 0xFFFF]).pos);
  }
}
BENCHMARK(BM_RmiPredict)->Arg(10'000)->Arg(100'000);

void BM_RmiLowerBound(benchmark::State& state) {
  rmi::RmiConfig config;
  config.num_leaf_models = static_cast<size_t>(state.range(0));
  rmi::LinearRmi index;
  if (!index.Build(Keys(), config).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.LowerBound(qs[i++ & 0xFFFF]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RmiLowerBound)->Arg(10'000)->Arg(100'000);

// Batched vs. single-key lookups (compare items_per_second against
// BM_RmiLowerBound): the batch path software-pipelines route / predict /
// search over 16-key blocks so neighboring cache misses overlap.
void BM_RmiLookupBatch(benchmark::State& state) {
  rmi::RmiConfig config;
  config.num_leaf_models = static_cast<size_t>(state.range(0));
  rmi::LinearRmi index;
  if (!index.Build(Keys(), config).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  const auto& qs = Queries();
  std::vector<size_t> out(qs.size());
  for (auto _ : state) {
    index.LookupBatch(qs, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(qs.size()));
}
BENCHMARK(BM_RmiLookupBatch)->Arg(10'000)->Arg(100'000);

void BM_BTreeFindPage(benchmark::State& state) {
  btree::ReadOnlyBTree tree;
  if (!tree.Build(Keys(), static_cast<size_t>(state.range(0))).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.FindPage(qs[i++ & 0xFFFF]));
  }
}
BENCHMARK(BM_BTreeFindPage)->Arg(32)->Arg(128)->Arg(512);

void BM_BTreeLowerBound(benchmark::State& state) {
  btree::ReadOnlyBTree tree;
  if (!tree.Build(Keys(), static_cast<size_t>(state.range(0))).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.LowerBound(qs[i++ & 0xFFFF]));
  }
}
BENCHMARK(BM_BTreeLowerBound)->Arg(32)->Arg(128)->Arg(512);

void BM_FullBinarySearch(benchmark::State& state) {
  size_t i = 0;
  const auto& keys = Keys();
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        search::BinarySearch(keys.data(), 0, keys.size(), qs[i++ & 0xFFFF]));
  }
}
BENCHMARK(BM_FullBinarySearch);

void BM_MurmurHash(benchmark::State& state) {
  hash::RandomHash h(Keys().size(), 3);
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(qs[i++ & 0xFFFF]));
  }
}
BENCHMARK(BM_MurmurHash);

void BM_LearnedHash(benchmark::State& state) {
  hash::LearnedHash<models::LinearModel> h;
  rmi::RmiConfig config;
  config.num_leaf_models = 100'000;
  if (!h.Build(Keys(), Keys().size(), config).ok()) {
    state.SkipWithError("build failed");
    return;
  }
  size_t i = 0;
  const auto& qs = Queries();
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(qs[i++ & 0xFFFF]));
  }
}
BENCHMARK(BM_LearnedHash);

}  // namespace

BENCHMARK_MAIN();
