// §7 "Multi-Dimensional Indexes" (future work): learned z-order index vs
// uniform grid on clustered 2-D points — point probes and rectangle
// queries of varying selectivity.

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "lif/measure.h"
#include "mdim/mdim_index.h"

using namespace li;

namespace {

/// Clustered points (city-like hotspots over a sparse background).
std::vector<mdim::Point> ClusteredPoints(size_t n, uint64_t seed) {
  Xorshift128Plus rng(seed);
  std::vector<mdim::Point> pts;
  pts.reserve(n);
  struct Hotspot {
    double x, y, spread;
  };
  std::vector<Hotspot> hotspots;
  for (int i = 0; i < 24; ++i) {
    hotspots.push_back({rng.NextDouble() * (1u << 24),
                        rng.NextDouble() * (1u << 24),
                        1000.0 + rng.NextDouble() * 60'000.0});
  }
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < 0.15) {
      pts.push_back({static_cast<uint32_t>(rng.NextBounded(1u << 24)),
                     static_cast<uint32_t>(rng.NextBounded(1u << 24))});
    } else {
      const auto& h = hotspots[rng.NextBounded(hotspots.size())];
      const double x = h.x + h.spread * rng.NextGaussian();
      const double y = h.y + h.spread * rng.NextGaussian();
      pts.push_back(
          {static_cast<uint32_t>(std::clamp(x, 0.0, double((1u << 24) - 1))),
           static_cast<uint32_t>(std::clamp(y, 0.0, double((1u << 24) - 1)))});
    }
  }
  return pts;
}

}  // namespace

int main() {
  const size_t n = lif::BenchScaleKeys() / 2;
  printf("Multi-dimensional learned index vs grid (%zu clustered points)\n",
         n);
  const auto pts = ClusteredPoints(n, 3);

  mdim::LearnedZIndex learned;
  mdim::GridIndex grid;
  if (!learned.Build(pts, std::max<size_t>(1024, n / 100)).ok() ||
      !grid.Build(pts, 256).ok()) {
    fprintf(stderr, "build failed\n");
    return 1;
  }
  printf("index overhead: learned %.2f MB, grid %.2f MB\n",
         learned.SizeBytes() / 1e6, grid.SizeBytes() / 1e6);

  // Point probes.
  std::vector<mdim::Point> probes;
  {
    Xorshift128Plus rng(5);
    for (int i = 0; i < 100'000; ++i) {
      probes.push_back(pts[rng.NextBounded(pts.size())]);
    }
  }
  const double lp = lif::MeasureNsPerOp(
      probes, 1, [&](const mdim::Point& p) { return learned.Contains(p); });
  const double gp = lif::MeasureNsPerOp(
      probes, 1, [&](const mdim::Point& p) { return grid.Contains(p); });
  printf("point probe: learned %.0f ns, grid %.0f ns\n", lp, gp);

  // Rectangle queries at three selectivities.
  lif::Table table({"query half-width", "avg hits", "learned us/query",
                    "grid us/query", "learned seeks"});
  for (const uint32_t half : {1u << 12, 1u << 15, 1u << 18}) {
    Xorshift128Plus rng(7);
    std::vector<mdim::Rect> rects;
    for (int i = 0; i < 50; ++i) {
      const auto& c = pts[rng.NextBounded(pts.size())];
      mdim::Rect r;
      r.x0 = c.x > half ? c.x - half : 0;
      r.y0 = c.y > half ? c.y - half : 0;
      r.x1 = c.x + half;
      r.y1 = c.y + half;
      rects.push_back(r);
    }
    std::vector<mdim::Point> out;
    size_t hits = 0, seeks = 0;
    Timer t1;
    for (const auto& r : rects) {
      learned.RangeQuery(r, &out);
      hits += out.size();
      seeks += learned.last_query_seeks();
    }
    const double lus = t1.ElapsedMicros() / rects.size();
    Timer t2;
    for (const auto& r : rects) grid.RangeQuery(r, &out);
    const double gus = t2.ElapsedMicros() / rects.size();
    char c1[32], c2[32], c3[32], c4[32], c5[32];
    snprintf(c1, sizeof(c1), "%u", half);
    snprintf(c2, sizeof(c2), "%.0f", double(hits) / rects.size());
    snprintf(c3, sizeof(c3), "%.1f", lus);
    snprintf(c4, sizeof(c4), "%.1f", gus);
    snprintf(c5, sizeof(c5), "%.1f", double(seeks) / rects.size());
    table.AddRow({c1, c2, c3, c4, c5});
  }
  table.Print();
  return 0;
}
