// Read/write workload sweep for the writable-index subsystem (Appendix
// D.1): insert ratios of 0/1/10/50% over RMI, B-Tree and delta-wrapped
// bases.
//
// Per (candidate, ratio) cell the bench builds the index over a key split
// (held-out keys form the insert stream, so inserts match the data
// distribution), drives one deterministic interleaved stream of
// membership probes and inserts, and reports:
//   mixed_ns  — ns/op over the whole stream (the headline number),
//   lookup_ns — rank-lookup ns/op measured after the stream with the
//               delta still populated (for the dynamic B-Tree baseline
//               this column is its native exact Find).
// Read-only RMI and B-Tree rows anchor the sweep: the acceptance bar is
// delta-wrapped RMI lookup throughput within 2x of the read-only base at
// the 10% ratio. The bench verifies consistency (inserted keys visible,
// ranks matching a from-scratch reference) and exits non-zero on any
// violation, so the CI bench-smoke job is a functional check too.
//
// Scale knobs: BENCH_RW_KEYS (exact key count; default REPRO_SCALE_M
// million via lif::BenchScaleKeys) and BENCH_RW_OPS (ops per cell;
// default keys/10). BENCH_MICRO_JSON=1 additionally emits
// BENCH_readwrite.json through the shared bench_json writer.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "json_out.h"

#include "btree/dynamic_btree.h"
#include "btree/readonly_btree.h"
#include "common/random.h"
#include "common/timer.h"
#include "data/datasets.h"
#include "dynamic/delta_range_index.h"
#include "lif/measure.h"
#include "rmi/rmi.h"

using namespace li;

namespace {

std::string Fmt(double v, int prec = 1) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long long parsed = atoll(v);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

struct CellResult {
  double mixed_ns = 0.0;
  double lookup_ns = 0.0;
  size_t inserted = 0;   // inserts actually executed
  uint64_t merges = 0;
  double merge_ms = 0.0;
  double delta_hit_rate = 0.0;
  bool consistent = true;
};

/// Drives the interleaved stream. `probe` is the candidate's membership
/// op, `rank` its rank lookup (or the same membership op for structures
/// without rank semantics).
template <typename InsertFn, typename ProbeFn, typename RankFn>
CellResult RunStream(const lif::ReadWriteWorkload& w, InsertFn&& do_insert,
                     ProbeFn&& do_probe, RankFn&& do_rank) {
  CellResult r;
  size_t ii = 0, li = 0;
  uint64_t sink = 0;
  Timer timer;
  for (const uint8_t op : w.is_insert) {
    if (op != 0 && ii < w.inserts.size()) {
      do_insert(w.inserts[ii++]);
    } else {
      sink += do_probe(w.lookups[li++ % w.lookups.size()]) ? 1 : 0;
    }
  }
  r.mixed_ns = timer.ElapsedNanos() /
               static_cast<double>(std::max<size_t>(w.is_insert.size(), 1));
  DoNotOptimize(sink);
  r.inserted = ii;
  r.lookup_ns =
      lif::MeasureNsPerOp(w.lookups, 3, [&](uint64_t q) { return do_rank(q); });
  return r;
}

/// Reference live key set after the stream: base split + executed inserts.
std::vector<uint64_t> ReferenceLive(const lif::ReadWriteWorkload& w,
                                    size_t inserted) {
  std::vector<uint64_t> live = w.base;
  live.insert(live.end(), w.inserts.begin(),
              w.inserts.begin() + static_cast<ptrdiff_t>(inserted));
  std::sort(live.begin(), live.end());
  return live;
}

template <typename Idx>
bool CheckConsistency(const Idx& idx, const lif::ReadWriteWorkload& w,
                      size_t inserted) {
  const std::vector<uint64_t> live = ReferenceLive(w, inserted);
  if (idx.size() != live.size()) {
    fprintf(stderr, "FAIL: size %zu != reference %zu\n", idx.size(),
            live.size());
    return false;
  }
  Xorshift128Plus rng(4242);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t q = i < 1000 && inserted > 0
                           ? w.inserts[rng.NextBounded(inserted)]
                           : live[rng.NextBounded(live.size())];
    if (!idx.Contains(q)) {
      fprintf(stderr, "FAIL: live key %llu invisible\n",
              static_cast<unsigned long long>(q));
      return false;
    }
    const size_t expect = static_cast<size_t>(
        std::lower_bound(live.begin(), live.end(), q) - live.begin());
    if (idx.Lookup(q) != expect) {
      fprintf(stderr, "FAIL: rank(%llu) = %zu, want %zu\n",
              static_cast<unsigned long long>(q), idx.Lookup(q), expect);
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const size_t n = EnvSize("BENCH_RW_KEYS", lif::BenchScaleKeys(2));
  const size_t ops = EnvSize("BENCH_RW_OPS", std::max<size_t>(n / 10, 1000));
  const int ratios[] = {0, 1, 10, 50};

  printf("== read/write sweep: %zu lognormal keys, %zu ops per cell ==\n", n,
         ops);
  const std::vector<uint64_t> keys = data::GenLognormal(n);

  std::vector<bench_json::Entry> json;
  auto emit = [&json](const std::string& name, double ns) {
    json.push_back(
        bench_json::Entry{name, ns, ns > 0.0 ? 1e9 / ns : 0.0});
  };

  lif::Table table({"config", "insert%", "mixed ns/op", "lookup ns/op",
                    "merges", "merge ms", "delta hit%"});
  bool all_consistent = true;
  double rmi_baseline_lookup_ns = 0.0;
  double delta_rmi_lookup_at_10 = 0.0;
  // The acceptance factor compares like with like: a read-only RMI built
  // over the SAME base split as the 10%-cell delta index, timed on the
  // SAME probe set (the global anchor above uses its own sample and is
  // informational only).
  double matched_rmi_baseline_at_10 = 0.0;

  const auto leaf_models = std::max<size_t>(64, n / 10);

  // ---- read-only anchors (lookup-only; they cannot absorb inserts) ----
  {
    rmi::RmiConfig rc;
    rc.num_leaf_models = leaf_models;
    rmi::LinearRmi rmi_idx;
    if (!rmi_idx.Build(keys, rc).ok()) {
      fprintf(stderr, "rmi baseline build failed\n");
      return 1;
    }
    const auto probes = data::SampleKeys(keys, 1 << 14, 7);
    rmi_baseline_lookup_ns = lif::MeasureNsPerOp(
        probes, 3, [&](uint64_t q) { return rmi_idx.Lookup(q); });
    table.AddSection("read-only bases");
    table.AddRow({"rmi (read-only)", "0",
                  "-", Fmt(rmi_baseline_lookup_ns),
                  "-", "-", "-"});
    emit("readwrite/rmi_readonly/lookup_ns", rmi_baseline_lookup_ns);

    btree::ReadOnlyBTree bt;
    if (!bt.Build(keys, btree::ReadOnlyBTreeConfig{128}).ok()) {
      fprintf(stderr, "btree baseline build failed\n");
      return 1;
    }
    const double bt_ns = lif::MeasureNsPerOp(
        probes, 3, [&](uint64_t q) { return bt.Lookup(q); });
    table.AddRow({"btree (read-only)", "0", "-",
                  lif::Table::WithFactor(bt_ns, bt_ns /
                                                    rmi_baseline_lookup_ns),
                  "-", "-", "-"});
    emit("readwrite/btree_readonly/lookup_ns", bt_ns);
  }

  // ---- writable candidates across the ratio sweep ----
  for (const int pct : ratios) {
    const lif::ReadWriteWorkload w = lif::MakeReadWriteWorkload(
        keys, ops, pct / 100.0, 1 << 14, 1234 + static_cast<uint64_t>(pct));
    table.AddSection("insert ratio " + std::to_string(pct) + "%");

    // Delta-wrapped RMI.
    {
      using DeltaRmi = dynamic::DeltaRangeIndex<rmi::LinearRmi>;
      DeltaRmi::Config cfg;
      cfg.base.num_leaf_models = std::max<size_t>(64, w.base.size() / 10);
      // Operational merge cadence: bound the delta (and so the read
      // amplification) at a few thousand entries; the merge cost this
      // buys shows up honestly in mixed_ns and the merges column.
      cfg.policy.min_delta_entries = 1024;
      cfg.policy.max_delta_entries = 4096;
      DeltaRmi idx;
      if (!idx.Build(w.base, cfg).ok()) {
        fprintf(stderr, "delta_rmi build failed\n");
        return 1;
      }
      CellResult r = RunStream(
          w, [&](uint64_t k) { idx.Insert(k); },
          [&](uint64_t q) { return idx.Contains(q); },
          [&](uint64_t q) { return idx.Lookup(q); });
      r.consistent = CheckConsistency(idx, w, r.inserted);
      const auto st = idx.Stats();
      r.merges = st.merges;
      r.merge_ms = st.total_merge_ns / 1e6;
      r.delta_hit_rate = st.DeltaHitRate();
      all_consistent &= r.consistent;
      if (pct == 10) {
        delta_rmi_lookup_at_10 = r.lookup_ns;
        rmi::LinearRmi matched;
        if (!matched.Build(w.base, cfg.base).ok()) {
          fprintf(stderr, "matched baseline build failed\n");
          return 1;
        }
        matched_rmi_baseline_at_10 = lif::MeasureNsPerOp(
            w.lookups, 3, [&](uint64_t q) { return matched.Lookup(q); });
      }
      table.AddRow(
          {"delta[rmi]", std::to_string(pct),
           Fmt(r.mixed_ns),
           lif::Table::WithFactor(r.lookup_ns,
                                  r.lookup_ns / rmi_baseline_lookup_ns),
           std::to_string(r.merges),
           Fmt(r.merge_ms),
           Fmt(r.delta_hit_rate * 100.0)});
      const std::string prefix =
          "readwrite/delta_rmi/ins" + std::to_string(pct);
      emit(prefix + "/mixed_ns", r.mixed_ns);
      emit(prefix + "/lookup_ns", r.lookup_ns);
    }

    // Delta-wrapped read-only B-Tree.
    {
      using DeltaBt = dynamic::DeltaRangeIndex<btree::ReadOnlyBTree>;
      DeltaBt::Config cfg;
      cfg.base.keys_per_page = 128;
      cfg.policy.min_delta_entries = 1024;
      cfg.policy.max_delta_entries = 4096;
      DeltaBt idx;
      if (!idx.Build(w.base, cfg).ok()) {
        fprintf(stderr, "delta_btree build failed\n");
        return 1;
      }
      CellResult r = RunStream(
          w, [&](uint64_t k) { idx.Insert(k); },
          [&](uint64_t q) { return idx.Contains(q); },
          [&](uint64_t q) { return idx.Lookup(q); });
      r.consistent = CheckConsistency(idx, w, r.inserted);
      const auto st = idx.Stats();
      all_consistent &= r.consistent;
      table.AddRow(
          {"delta[btree]", std::to_string(pct),
           Fmt(r.mixed_ns),
           lif::Table::WithFactor(r.lookup_ns,
                                  r.lookup_ns / rmi_baseline_lookup_ns),
           std::to_string(st.merges),
           Fmt(st.total_merge_ns / 1e6),
           Fmt(st.DeltaHitRate() * 100.0)});
      const std::string prefix =
          "readwrite/delta_btree/ins" + std::to_string(pct);
      emit(prefix + "/mixed_ns", r.mixed_ns);
      emit(prefix + "/lookup_ns", r.lookup_ns);
    }

    // Fully-dynamic B-Tree map (native inserts, exact Find; the classic
    // structure the paper's write-path sketch competes with).
    {
      btree::BTreeMap map;
      if (!map.Build(w.base, {}).ok()) {
        fprintf(stderr, "btree_dynamic build failed\n");
        return 1;
      }
      CellResult r = RunStream(
          w, [&](uint64_t k) { map.Insert(k, 0); },
          [&](uint64_t q) { return map.Find(q).has_value(); },
          [&](uint64_t q) { return map.Find(q).has_value(); });
      table.AddRow({"btree-map (dynamic)", std::to_string(pct),
                    Fmt(r.mixed_ns),
                    lif::Table::WithFactor(r.lookup_ns,
                                           r.lookup_ns /
                                               rmi_baseline_lookup_ns),
                    "-", "-", "-"});
      const std::string prefix =
          "readwrite/btree_dynamic/ins" + std::to_string(pct);
      emit(prefix + "/mixed_ns", r.mixed_ns);
      emit(prefix + "/lookup_ns", r.lookup_ns);
    }
  }

  table.Print();

  const double factor =
      matched_rmi_baseline_at_10 > 0.0
          ? delta_rmi_lookup_at_10 / matched_rmi_baseline_at_10
          : 0.0;
  printf(
      "\ndelta-wrapped RMI lookup at 10%% inserts: %.1f ns vs %.1f ns "
      "matched read-only base (%.2fx; acceptance bar <= 2x)\n",
      delta_rmi_lookup_at_10, matched_rmi_baseline_at_10, factor);
  emit("readwrite/delta_rmi_vs_readonly_factor_ins10", factor);

  if (const char* env = getenv("BENCH_MICRO_JSON")) {
    const char* path = bench_json::ResolvePath(env, "BENCH_readwrite.json");
    if (bench_json::Write(path, json)) {
      fprintf(stderr, "wrote %s\n", path);
    } else {
      fprintf(stderr, "failed to write %s\n", path);
      return 1;
    }
  }
  if (!all_consistent) {
    fprintf(stderr, "consistency checks FAILED\n");
    return 1;
  }
  return 0;
}
