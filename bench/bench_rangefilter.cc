// Range-filter bench: FPR-vs-bits-per-key curves for the two
// src/rangefilter/ constructions — the learned segmented filter and the
// fixed-width interval baseline — over uniform, zipf, and
// adversarial-gap key sets, next to a plain-Bloom point-probe comparator
// (the only range strategy a classic Bloom filter offers: probe every
// point of a narrow range).
//
// Every (dataset, filter, budget) cell first passes a zero-false-negative
// oracle gate over witness ranges that provably contain a built key; any
// false negative exits 1 — a filter that loses keys has no business on a
// perf chart. The headline comparison is the issue's acceptance bar: on
// the skewed sets (zipf, advgap) the learned layout beats the interval
// baseline on range-FPR at equal bits per key, because equal-mass
// segments spend bits on key density while fixed-width blocks spend them
// on key span.
//
//   BENCH_RANGEFILTER_KEYS     keys per dataset   (default 200'000)
//   BENCH_RANGEFILTER_QUERIES  empty queries/cell (default 40'000)
//   BENCH_MICRO_JSON           unset = console only; "1" =
//                              BENCH_rangefilter.json; other = that path
//
// JSON schema (docs/BENCHMARKS.md "BENCH_rangefilter.json"): row names
//   rangefilter/<dataset>/<filter>/bpk<B>/<metric>
// with metric one of range_fpr (ns_per_op carries the dimensionless
// fraction), query_ns (ns_per_op + items_per_second = probes/s),
// bits_per_key (actual total bits incl. metadata), and
// zero_false_negatives (1.0 = the oracle gate passed). The Bloom
// comparator rows use filter name "bloom-point" and carry the narrow
// (width <= 64) query mix they are able to answer at all.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "json_out.h"
#include "bloom/bloom_filter.h"
#include "common/random.h"
#include "common/status.h"
#include "index/range_filter.h"
#include "rangefilter/interval_bitmap_filter.h"
#include "rangefilter/learned_range_filter.h"
#include "rangefilter/workload.h"

namespace li {
namespace {

using Clock = std::chrono::steady_clock;

double NsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
}

/// Forces `v` to be materialized each iteration. The query paths are
/// pure, so without a barrier the timed loop is CSE'd against the
/// warm-up loop and measures nothing but two clock reads.
inline void KeepAlive(bool v) { asm volatile("" : : "r"(v)); }

size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const long long v = std::atoll(env);
  return v > 0 ? static_cast<size_t>(v) : fallback;
}

[[noreturn]] void Fail(const std::string& what) {
  std::fprintf(stderr, "bench_rangefilter: %s\n", what.c_str());
  std::exit(1);
}

struct Cell {
  std::string name;  // rangefilter/<dataset>/<filter>/bpk<B>
  double range_fpr = 0.0;
  double query_ns = 0.0;
  double bits_per_key = 0.0;  // actual, incl. segment metadata
};

/// Runs one (filter, query set) cell: oracle gate first, then FPR and
/// query latency over the empty set.
template <typename F>
Cell RunCell(const std::string& name, const F& filter, size_t num_keys,
             const std::vector<index::RangeQuery>& empties,
             const std::vector<index::RangeQuery>& witnesses) {
  for (const index::RangeQuery& w : witnesses) {
    if (!filter.MightContainRange(w.lo, w.hi)) {
      Fail(name + ": FALSE NEGATIVE on witness range [" +
           std::to_string(w.lo) + ", " + std::to_string(w.hi) + ")");
    }
  }
  Cell cell;
  cell.name = name;
  cell.range_fpr = filter.MeasuredRangeFpr(empties);
  cell.bits_per_key = static_cast<double>(filter.SizeBytes()) * 8.0 /
                      static_cast<double>(num_keys);
  for (const index::RangeQuery& q : empties) {  // warm-up
    KeepAlive(filter.MightContainRange(q.lo, q.hi));
  }
  const auto t0 = Clock::now();
  for (const index::RangeQuery& q : empties) {
    KeepAlive(filter.MightContainRange(q.lo, q.hi));
  }
  const double ns = NsSince(t0);
  cell.query_ns = ns / static_cast<double>(empties.size());
  return cell;
}

/// The Bloom comparator answers a range only by probing every point in
/// it, so it competes on the narrow-query mix alone.
Cell RunBloomCell(const std::string& name, const bloom::BloomFilter& filter,
                  size_t num_keys,
                  const std::vector<index::RangeQuery>& narrow_empties,
                  std::span<const uint64_t> keys) {
  auto probe_range = [&](uint64_t lo, uint64_t hi) {
    for (uint64_t k = lo; k < hi; ++k) {
      if (filter.MightContain(k)) return true;
    }
    return false;
  };
  Xorshift128Plus rng(7);
  for (int i = 0; i < 20'000; ++i) {  // oracle gate on built keys
    const uint64_t k = keys[rng.NextBounded(keys.size())];
    if (!probe_range(k, k + 1)) {
      Fail(name + ": FALSE NEGATIVE on built key " + std::to_string(k));
    }
  }
  Cell cell;
  cell.name = name;
  size_t fp = 0;
  for (const index::RangeQuery& q : narrow_empties) {
    fp += probe_range(q.lo, q.hi);
  }
  cell.range_fpr =
      static_cast<double>(fp) / static_cast<double>(narrow_empties.size());
  cell.bits_per_key = static_cast<double>(filter.SizeBytes()) * 8.0 /
                      static_cast<double>(num_keys);
  const auto t0 = Clock::now();
  for (const index::RangeQuery& q : narrow_empties) {
    KeepAlive(probe_range(q.lo, q.hi));
  }
  const double ns = NsSince(t0);
  cell.query_ns = ns / static_cast<double>(narrow_empties.size());
  return cell;
}

int Run() {
  const size_t n = EnvSize("BENCH_RANGEFILTER_KEYS", 200'000);
  const size_t q = EnvSize("BENCH_RANGEFILTER_QUERIES", 40'000);
  const double budgets[] = {4.0, 8.0, 16.0, 32.0};

  struct Dataset {
    const char* name;
    std::vector<uint64_t> keys;
  };
  std::vector<Dataset> datasets;
  datasets.push_back({"uniform", rangefilter::GenUniformKeys(n, 101)});
  datasets.push_back({"zipf", rangefilter::GenZipfKeys(n, 102)});
  datasets.push_back({"advgap", rangefilter::GenAdversarialGapKeys(n, 103)});

  std::vector<Cell> cells;
  std::printf("%-44s %10s %10s %10s\n", "cell", "fpr", "query_ns",
              "bits/key");
  for (const Dataset& ds : datasets) {
    // The operational query mix: half correlated adjacent-gap near
    // misses (the LSM probe shape), half uniform over the domain (the
    // analytics predicate shape). One mix per dataset, shared by every
    // filter so the comparison is apples to apples.
    rangefilter::EmptyQueryConfig qcfg;
    qcfg.count = q;
    qcfg.correlated_fraction = 0.5;
    const std::vector<index::RangeQuery> empties =
        rangefilter::GenEmptyRanges(ds.keys, 201, qcfg);
    qcfg.max_width = 64;  // the only mix the Bloom comparator can serve
    const std::vector<index::RangeQuery> narrow_empties =
        rangefilter::GenEmptyRanges(ds.keys, 202, qcfg);
    const std::vector<index::RangeQuery> witnesses =
        rangefilter::GenWitnessRanges(ds.keys, 203, 20'000);
    if (empties.size() < q / 2 || narrow_empties.size() < q / 2) {
      Fail(std::string(ds.name) + ": could not generate empty queries");
    }

    for (const double bpk : budgets) {
      const std::string stem =
          "rangefilter/" + std::string(ds.name) + "/";
      const std::string suffix =
          "/bpk" + std::to_string(static_cast<int>(bpk));
      {
        rangefilter::LearnedRangeFilterConfig cfg;
        cfg.bits_per_key = bpk;
        rangefilter::LearnedRangeFilter f;
        if (Status st = f.Build(ds.keys, cfg); !st.ok()) {
          Fail("learned build: " + st.message());
        }
        cells.push_back(RunCell(stem + "learned" + suffix, f,
                                ds.keys.size(), empties, witnesses));
      }
      {
        rangefilter::IntervalBitmapFilterConfig cfg;
        cfg.bits_per_key = bpk;
        rangefilter::IntervalBitmapFilter f;
        if (Status st = f.Build(ds.keys, cfg); !st.ok()) {
          Fail("interval build: " + st.message());
        }
        cells.push_back(RunCell(stem + "interval" + suffix, f,
                                ds.keys.size(), empties, witnesses));
      }
      {
        bloom::BloomFilter f;
        const auto bits = static_cast<uint64_t>(
            bpk * static_cast<double>(ds.keys.size()));
        const int hashes =
            std::max(1, static_cast<int>(bpk * 0.693 + 0.5));
        if (Status st = f.InitExplicit(std::max<uint64_t>(64, bits), hashes);
            !st.ok()) {
          Fail("bloom init: " + st.message());
        }
        for (const uint64_t k : ds.keys) f.Add(k);
        cells.push_back(RunBloomCell(stem + "bloom-point" + suffix, f,
                                     ds.keys.size(), narrow_empties,
                                     ds.keys));
      }
      for (size_t i = cells.size() - 3; i < cells.size(); ++i) {
        std::printf("%-44s %10.4f %10.1f %10.2f\n", cells[i].name.c_str(),
                    cells[i].range_fpr, cells[i].query_ns,
                    cells[i].bits_per_key);
      }
    }
  }

  // The acceptance comparison: learned must beat interval on range-FPR
  // at equal budget on the skewed sets. Checked here (and again by the
  // CI validator) so a local run fails loudly too.
  auto fpr_of = [&](const std::string& name) {
    for (const Cell& c : cells) {
      if (c.name == name) return c.range_fpr;
    }
    Fail("missing cell " + name);
  };
  for (const char* ds : {"zipf", "advgap"}) {
    for (const double bpk : budgets) {
      const std::string suffix =
          "/bpk" + std::to_string(static_cast<int>(bpk));
      const std::string stem = "rangefilter/" + std::string(ds) + "/";
      const double learned = fpr_of(stem + "learned" + suffix);
      const double interval = fpr_of(stem + "interval" + suffix);
      if (learned >= interval) {
        Fail(stem + "learned" + suffix + ": learned FPR " +
             std::to_string(learned) + " does not beat interval " +
             std::to_string(interval));
      }
    }
  }

  if (std::getenv("BENCH_MICRO_JSON") != nullptr) {
    std::vector<bench_json::Entry> json;
    for (const Cell& c : cells) {
      json.push_back({c.name + "/range_fpr", c.range_fpr, 0.0});
      json.push_back({c.name + "/query_ns", c.query_ns,
                      c.query_ns > 0.0 ? 1e9 / c.query_ns : 0.0});
      json.push_back({c.name + "/bits_per_key", c.bits_per_key, 0.0});
      // 1.0 = the witness-range oracle gate passed; a failed gate never
      // reaches emission (the bench exits 1 above).
      json.push_back({c.name + "/zero_false_negatives", 1.0, 0.0});
    }
    const char* path = bench_json::ResolvePath(
        std::getenv("BENCH_MICRO_JSON"), "BENCH_rangefilter.json");
    if (bench_json::Write(path, json)) {
      std::printf("wrote %s\n", path);
    } else {
      Fail(std::string("failed to write ") + path);
    }
  }
  return 0;
}

}  // namespace
}  // namespace li

int main() { return li::Run(); }
