// Ablation (§3.2): RMI stage count. The paper evaluates 2-stage indexes;
// the K-stage generalization shows why — extra stages buy little error at
// real routing cost ("There is no search process required in-between the
// stages" holds, but each stage adds a model evaluation + a dependent
// memory access).

#include <cstdio>
#include <vector>

#include "data/datasets.h"
#include "lif/measure.h"
#include "rmi/multistage.h"

using namespace li;

int main() {
  const size_t n = lif::BenchScaleKeys();
  printf("RMI stage-count ablation (weblog, %zu keys)\n", n);
  const auto keys = data::GenWeblog(n);
  const auto queries = data::SampleKeys(keys, 200'000);

  lif::Table table({"Stages", "Layout", "Size (MB)", "max |err|",
                    "Lookup (ns)"});
  struct Config {
    const char* label;
    std::vector<size_t> sizes;
  };
  const size_t leaves = std::max<size_t>(256, n / 1000);
  const Config configs[] = {
      {"2", {leaves}},
      {"3", {64, leaves}},
      {"3-wide", {1024, leaves}},
      {"4", {16, 512, leaves}},
  };
  for (const Config& c : configs) {
    rmi::MultiStageConfig msc;
    msc.stage_sizes = c.sizes;
    rmi::MultiStageRmi index;
    if (!index.Build(keys, msc).ok()) continue;
    const double ns = lif::MeasureNsPerOp(
        queries, 2, [&](uint64_t q) { return index.LowerBound(q); });
    std::string layout = "1";
    for (const size_t m : c.sizes) layout += "->" + std::to_string(m);
    char c1[32], c2[32], c3[32];
    snprintf(c1, sizeof(c1), "%.3f", index.SizeBytes() / 1e6);
    snprintf(c2, sizeof(c2), "%lld",
             static_cast<long long>(index.MaxAbsError()));
    snprintf(c3, sizeof(c3), "%.0f", ns);
    table.AddRow({c.label, layout, c1, c2, c3});
  }
  table.Print();
  return 0;
}
