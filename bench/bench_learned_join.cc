// §7 "Beyond Indexing" — joins: crossover between linear merge
// intersection and learned-index probe/skip intersection as the size ratio
// |small| / |big| shrinks. Merge is O(|A|+|B|); learned probing is
// O(|A| * lookup), so the learned join wins when one side is small — the
// same argument as an index nested-loop join, with the model replacing the
// B-Tree.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "data/datasets.h"
#include "lif/measure.h"
#include "rmi/rmi.h"
#include "sort/learned_join.h"

using namespace li;

int main() {
  const size_t big_n = lif::BenchScaleKeys();
  printf("Learned join crossover (big side: %zu lognormal keys)\n", big_n);
  const auto big = data::GenLognormal(big_n);
  rmi::RmiConfig config;
  config.num_leaf_models = std::max<size_t>(1024, big_n / 100);
  rmi::LinearRmi index;
  if (!index.Build(big, config).ok()) {
    fprintf(stderr, "index build failed\n");
    return 1;
  }

  lif::Table table({"|small|", "ratio", "merge ms", "learned-probe ms",
                    "learned-skip ms", "matches"});
  Xorshift128Plus rng(7);
  for (const size_t small_n :
       {big_n / 1000, big_n / 100, big_n / 10, big_n / 2}) {
    std::vector<uint64_t> small;
    small.reserve(small_n);
    for (size_t i = 0; i < small_n; ++i) {
      if (rng.NextDouble() < 0.5) {
        small.push_back(big[rng.NextBounded(big.size())]);
      } else {
        small.push_back(rng.NextBounded(big.back()));
      }
    }
    std::sort(small.begin(), small.end());
    small.erase(std::unique(small.begin(), small.end()), small.end());

    Timer t1;
    const size_t m1 = sort::LinearMergeIntersect(small, big);
    const double merge_ms = t1.ElapsedMillis();
    Timer t2;
    const size_t m2 = sort::LearnedProbeIntersect(small, index);
    const double probe_ms = t2.ElapsedMillis();
    Timer t3;
    const size_t m3 = sort::LearnedSkipIntersect(small, index);
    const double skip_ms = t3.ElapsedMillis();
    if (m1 != m2 || m1 != m3) {
      printf("MISMATCH: %zu %zu %zu\n", m1, m2, m3);
      return 1;
    }
    char c1[32], c2[32], c3[32], c4[32], c5[32], c6[32];
    snprintf(c1, sizeof(c1), "%zu", small.size());
    snprintf(c2, sizeof(c2), "1:%zu", big_n / std::max<size_t>(1, small.size()));
    snprintf(c3, sizeof(c3), "%.2f", merge_ms);
    snprintf(c4, sizeof(c4), "%.2f", probe_ms);
    snprintf(c5, sizeof(c5), "%.2f", skip_ms);
    snprintf(c6, sizeof(c6), "%zu", m1);
    table.AddRow({c1, c2, c3, c4, c5, c6});
  }
  table.Print();
  return 0;
}
