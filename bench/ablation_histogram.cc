// Ablation (§3.7.1 "Histogram" discussion): can histograms serve as CDF
// models? Equal-width buckets are O(1) to locate but collapse under skew;
// equal-depth buckets bound the error but need a binary search over
// boundaries — "the obvious solutions to this issue would yield a B-Tree".
// The RMI gets the best of both: O(1) routing AND skew-adaptive error.

#include <cmath>
#include <cstdio>
#include <vector>

#include "data/datasets.h"
#include "lif/measure.h"
#include "models/histogram.h"
#include "models/model.h"
#include "rmi/rmi.h"

using namespace li;

int main() {
  const size_t n = lif::BenchScaleKeys();
  printf("Histogram-as-CDF ablation (%zu keys)\n", n);
  lif::Table table({"Dataset", "Model", "RMSE (positions)", "predict ns",
                    "size MB"});

  for (const auto kind : {data::DatasetKind::kMaps,
                          data::DatasetKind::kLognormal}) {
    const auto keys = data::Generate(kind, n);
    std::vector<double> xs, ys;
    xs.reserve(n);
    ys.reserve(n);
    for (size_t i = 0; i < keys.size(); ++i) {
      xs.push_back(static_cast<double>(keys[i]));
      ys.push_back(static_cast<double>(i));
    }
    const auto queries = data::SampleKeys(keys, 100'000);

    auto report = [&](const char* name, auto& model, size_t size_bytes) {
      const double rmse = std::sqrt(models::MeanSquaredError(model, xs, ys));
      const double ns = lif::MeasureNsPerOp(queries, 2, [&](uint64_t q) {
        return static_cast<uint64_t>(model.Predict(static_cast<double>(q)));
      });
      char c1[32], c2[32], c3[32];
      snprintf(c1, sizeof(c1), "%.1f", rmse);
      snprintf(c2, sizeof(c2), "%.0f", ns);
      snprintf(c3, sizeof(c3), "%.3f", size_bytes / 1e6);
      table.AddRow({data::DatasetName(kind), name, c1, c2, c3});
    };

    models::EquiWidthHistogram ew;
    if (ew.Fit(xs, ys, 4096).ok()) report("equi-width 4096", ew, ew.SizeBytes());
    models::EquiDepthHistogram ed;
    if (ed.Fit(xs, ys, 4096).ok()) report("equi-depth 4096", ed, ed.SizeBytes());

    // RMI "model" view: predict positions via the 2-stage hierarchy.
    rmi::RmiConfig config;
    config.num_leaf_models = 4096;
    rmi::LinearRmi index;
    if (index.Build(keys, config).ok()) {
      struct RmiAsModel {
        const rmi::LinearRmi* index;
        double Predict(double x) const {
          return static_cast<double>(
              index->Predict(static_cast<uint64_t>(x)).pos);
        }
        size_t SizeBytes() const { return index->SizeBytes(); }
      } wrapper{&index};
      report("2-stage RMI 4096", wrapper, index.SizeBytes());
    }
  }
  table.Print();
  return 0;
}
