// WAL bench: puts numbers on the two costs the durability layer asks a
// writer to pay (docs/DURABILITY.md) —
//
//   * append throughput vs fsync policy: the group-commit spectrum from
//     sync-on-ack (fsync_every_n = 1, every acknowledged write is on the
//     platter) through batched sync to never-sync (0, page-cache
//     durability). The spread between the ends is the price of the
//     strongest guarantee, and the batched points show how quickly group
//     commit buys most of it back.
//   * recovery time vs log length: Replay cost is linear in the record
//     count; these legs pin the constant so "how long after a crash until
//     the index serves again" is a multiplication, not a guess.
//
//   BENCH_WAL_OPS        records per leg (default 200'000)
//   BENCH_MICRO_JSON     unset = console only; "1" = BENCH_wal.json;
//                        other = that path (schema: docs/BENCHMARKS.md)

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "json_out.h"
#include "common/random.h"
#include "common/status.h"
#include "wal/wal.h"

namespace li {
namespace {

using Clock = std::chrono::steady_clock;

double NsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
}

size_t OpsFromEnv() {
  const char* env = std::getenv("BENCH_WAL_OPS");
  if (env == nullptr) return 200'000;
  const long long v = std::atoll(env);
  return v > 0 ? static_cast<size_t>(v) : 200'000;
}

std::string TmpPath(const char* tag) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/li_bench_wal_" + tag +
         ".wal";
}

[[noreturn]] void Fail(const char* what, const Status& st) {
  std::fprintf(stderr, "bench_wal: %s: %s\n", what, st.message().c_str());
  std::exit(1);
}

/// One append-throughput leg: `ops` 8-byte records under the given
/// group-commit policy. Returns ns/op.
double AppendLeg(size_t ops, size_t fsync_every_n) {
  wal::DurabilityConfig cfg;
  cfg.fsync_every_n = fsync_every_n;
  const std::string path = TmpPath("append");
  auto writer = wal::WalWriter::Create(path, 0, sizeof(uint64_t), cfg);
  if (!writer.ok()) Fail("create", writer.status());
  wal::WalWriter w = writer.take();

  Xorshift128Plus rng(42);
  const auto t0 = Clock::now();
  for (size_t i = 0; i < ops; ++i) {
    const uint64_t key = rng.Next();
    auto lsn = w.Append(wal::WalRecordType::kInsert, &key, sizeof(key));
    if (!lsn.ok()) Fail("append", lsn.status());
  }
  if (Status st = w.Sync(); !st.ok()) Fail("final sync", st);
  const double ns = NsSince(t0);
  std::remove(path.c_str());
  return ns / static_cast<double>(ops);
}

/// One recovery leg: write `records` entries (no syncing — write cost is
/// not under test), then time a full Replay scan. Returns ns/record.
double ReplayLeg(size_t records) {
  wal::DurabilityConfig cfg;
  cfg.fsync_every_n = 0;
  const std::string path = TmpPath("replay");
  {
    auto writer = wal::WalWriter::Create(path, 0, sizeof(uint64_t), cfg);
    if (!writer.ok()) Fail("create", writer.status());
    wal::WalWriter w = writer.take();
    Xorshift128Plus rng(43);
    for (size_t i = 0; i < records; ++i) {
      const uint64_t key = rng.Next();
      auto lsn = w.Append(wal::WalRecordType::kInsert, &key, sizeof(key));
      if (!lsn.ok()) Fail("append", lsn.status());
    }
    if (Status st = w.Sync(); !st.ok()) Fail("sync", st);
  }

  uint64_t applied = 0;
  const auto t0 = Clock::now();
  auto result = wal::Replay(
      path, [&](wal::WalRecordType, uint64_t, const void*, size_t) {
        ++applied;
        return Status::OK();
      });
  const double ns = NsSince(t0);
  if (!result.ok()) Fail("replay", result.status());
  if (applied != records) {
    std::fprintf(stderr, "bench_wal: replay saw %" PRIu64 " of %zu records\n",
                 applied, records);
    std::exit(1);
  }
  std::remove(path.c_str());
  return ns / static_cast<double>(records);
}

}  // namespace
}  // namespace li

int main() {
  using li::bench_json::Entry;
  const size_t ops = li::OpsFromEnv();
  std::vector<Entry> entries;

  std::printf("WAL bench (%zu records per leg)\n\n", ops);
  std::printf("append throughput vs fsync policy:\n");
  struct { size_t n; const char* label; } kPolicies[] = {
      {1, "fsync_every_1"},
      {8, "fsync_every_8"},
      {64, "fsync_every_64"},
      {0, "fsync_never"},
  };
  for (const auto& p : kPolicies) {
    // Sync-on-ack pays a device flush per record; cap the leg so the
    // bench stays interactive on slow disks.
    const size_t leg_ops = p.n == 1 ? std::min<size_t>(ops, 20'000) : ops;
    const double ns = li::AppendLeg(leg_ops, p.n);
    std::printf("  %-16s %10.0f ns/append  %12.0f appends/s\n", p.label, ns,
                1e9 / ns);
    entries.push_back({std::string("wal_append/") + p.label, ns, 1e9 / ns});
  }

  std::printf("\nrecovery time vs log length:\n");
  for (const size_t records : {ops / 8, ops / 2, ops}) {
    if (records == 0) continue;
    const double ns = li::ReplayLeg(records);
    std::printf("  %-16zu %10.2f ns/record  (%.1f ms total)\n", records, ns,
                ns * static_cast<double>(records) / 1e6);
    entries.push_back({"wal_replay/records_" + std::to_string(records), ns,
                       1e9 / ns});
  }

  if (std::getenv("BENCH_MICRO_JSON") != nullptr) {
    const char* path = li::bench_json::ResolvePath(
        std::getenv("BENCH_MICRO_JSON"), "BENCH_wal.json");
    if (li::bench_json::Write(path, entries)) {
      std::printf("\nwrote %s\n", path);
    } else {
      std::fprintf(stderr, "bench_wal: failed to write %s\n", path);
      return 1;
    }
  }
  return 0;
}
