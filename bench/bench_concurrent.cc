// Concurrency sweep for the thread-safe write path (src/concurrent/):
// aggregate mixed-workload throughput vs thread count for the single
// concurrent front-end and the range-sharded front-end, plus a
// read-latency histogram sampled during an active background merge.
//
// Per (candidate, insert-ratio, threads) cell the bench builds a fresh
// index over a key split, cuts one deterministic interleaved stream of
// rank lookups and held-out-key inserts into per-thread slices, starts
// all threads on one flag, and reports:
//   agg ns/op  — wall time / total ops (aggregate throughput currency),
//   Mops/s     — the same number as a rate,
//   speedup    — vs the candidate's own 1-thread cell at that ratio,
//   merges / freezes / contention — the ConcurrentStats gauges.
// After every cell the index is quiesced (WaitForMerges) and checked:
// live count must equal base + executed inserts, inserted keys must be
// visible, ranks must match a sorted reference — the bench exits non-zero
// on any violation, so the CI smoke run is a functional check too.
//
// The latency section builds a manual-policy index, samples per-op read
// latencies twice — against a quiet index, then while a writer floods
// inserts and requests back-to-back background merges — and prints
// p50/p90/p99/p99.9 for both. Acceptance bars (ISSUE 4): sharded
// 10%-insert throughput at 8 threads >= 4x its 1-thread cell (needs >= 8
// hardware threads to be meaningful), and during-merge reader p99 <= 2x
// the quiet p99.
//
// The skewed-stream section (ISSUE 5) drives zipf and moving-hotspot
// insert storms whose key distribution drifts from the build CDF, with
// online shard rebalancing off vs on, and reports final + peak max/mean
// shard mass, split/coalesce counts, and throughput. Acceptance bar:
// with rebalancing on, the final imbalance under the zipf storm stays
// within the configured factor while the fixed-boundary run blows
// through it. The batched-lookup section compares per-key Lookup routing
// against the shard-grouped LookupBatch on uniform probes (acceptance:
// grouped is faster — the recovered RMI software-pipeline win).
//
// The point and existence sweeps (ISSUE 9) drive the other two index
// classes' concurrent front-ends through the same scheduled stream:
// concurrent::ConcurrentPointIndex over the chained and cuckoo families
// (mixed Find/Insert, quiesced exact-record check, background rebuild
// counts), and concurrent::RebuildableExistence over a plain Bloom
// (mixed MightContain/Insert, zero-false-negative check across hot
// filter swaps). Both emit "concurrent/point/..." and
// "concurrent/existence/..." JSON rows.
//
// Scale knobs: BENCH_CONC_KEYS (default REPRO_SCALE_M million),
// BENCH_CONC_OPS (ops per cell, default keys/10), BENCH_CONC_THREADS
// (comma list, default "1,2,4,8,16"), BENCH_CONC_SHARDS (default 8),
// BENCH_CONC_LAT_SAMPLES (default 200000). BENCH_MICRO_JSON=1 emits
// BENCH_concurrent.json via the shared bench_json writer.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "json_out.h"

#include "bloom/bloom_filter.h"
#include "common/random.h"
#include "common/timer.h"
#include "concurrent/concurrent_point_index.h"
#include "concurrent/concurrent_writable_index.h"
#include "concurrent/rebuildable_existence.h"
#include "concurrent/sharded_index.h"
#include "data/datasets.h"
#include "dynamic/merge_policy.h"
#include "hash/chained_hash_map.h"
#include "hash/cuckoo_map.h"
#include "hash/record.h"
#include "lif/measure.h"
#include "rmi/rmi.h"

using namespace li;

namespace {

using ConcRmi = concurrent::ConcurrentWritableIndex<rmi::LinearRmi>;
using ShardedRmi = concurrent::ShardedIndex<ConcRmi>;

std::string Fmt(double v, int prec = 1) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long long parsed = atoll(v);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

std::vector<size_t> EnvThreadList() {
  std::vector<size_t> out;
  const char* v = getenv("BENCH_CONC_THREADS");
  std::string s = (v != nullptr && *v != '\0') ? v : "1,2,4,8,16";
  size_t pos = 0;
  while (pos < s.size()) {
    const size_t comma = s.find(',', pos);
    const size_t end = comma == std::string::npos ? s.size() : comma;
    const long t = atol(s.substr(pos, end - pos).c_str());
    if (t > 0) out.push_back(static_cast<size_t>(t));
    pos = end + 1;
  }
  if (out.empty()) out = {1, 2, 4, 8, 16};
  return out;
}

struct CellResult {
  double agg_ns = 0.0;
  size_t inserted = 0;
  uint64_t merges = 0;
  uint64_t freezes = 0;
  double contention = 0.0;
  bool consistent = true;
};

/// One measured cell: the shared multi-threaded mixed-stream harness
/// (lif::RunMixedStreamNs — the same code the LIF writable synthesizer
/// qualifies concurrent candidates with, so the two cannot drift). Every
/// scheduled insert executes (the workload maker bounds the schedule by
/// the held-out pool), so the executed count is the schedule count.
template <typename Idx>
CellResult RunCell(Idx& idx, const lif::ReadWriteWorkload& w,
                   size_t threads) {
  CellResult r;
  r.agg_ns = lif::RunMixedStreamNs(idx, w, threads);
  r.inserted = static_cast<size_t>(
      std::count_if(w.is_insert.begin(), w.is_insert.end(),
                    [](uint8_t op) { return op != 0; }));
  return r;
}

/// Quiesced functional check: the bench doubles as a smoke test.
template <typename Idx>
bool CheckCell(Idx& idx, const lif::ReadWriteWorkload& w, size_t inserted) {
  idx.WaitForMerges();
  std::vector<uint64_t> live = w.base;
  live.insert(live.end(), w.inserts.begin(),
              w.inserts.begin() + static_cast<ptrdiff_t>(inserted));
  std::sort(live.begin(), live.end());
  if (idx.size() != live.size()) {
    fprintf(stderr, "FAIL: size %zu != reference %zu\n", idx.size(),
            live.size());
    return false;
  }
  Xorshift128Plus rng(4242);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t q = i < 1000 && inserted > 0
                           ? w.inserts[rng.NextBounded(inserted)]
                           : live[rng.NextBounded(live.size())];
    if (!idx.Contains(q)) {
      fprintf(stderr, "FAIL: live key %llu invisible\n",
              static_cast<unsigned long long>(q));
      return false;
    }
    const size_t expect = static_cast<size_t>(
        std::lower_bound(live.begin(), live.end(), q) - live.begin());
    if (idx.Lookup(q) != expect) {
      fprintf(stderr, "FAIL: rank(%llu) = %zu, want %zu\n",
              static_cast<unsigned long long>(q), idx.Lookup(q), expect);
      return false;
    }
  }
  return true;
}

double Percentile(std::vector<double>& sorted_ns, double p) {
  if (sorted_ns.empty()) return 0.0;
  const size_t i = std::min(
      sorted_ns.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ns.size())));
  return sorted_ns[i];
}

struct LatencyProfile {
  double p50 = 0.0, p90 = 0.0, p99 = 0.0, p999 = 0.0;
};

/// Samples per-op read latencies (steady_clock around each Lookup).
LatencyProfile SampleReadLatency(const ConcRmi& idx,
                                 const std::vector<uint64_t>& probes,
                                 size_t samples) {
  std::vector<double> ns;
  ns.reserve(samples);
  Xorshift128Plus rng(777);
  uint64_t sink = 0;
  for (size_t i = 0; i < samples; ++i) {
    const uint64_t q = probes[rng.NextBounded(probes.size())];
    const auto t0 = std::chrono::steady_clock::now();
    sink += idx.Lookup(q);
    const auto t1 = std::chrono::steady_clock::now();
    ns.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  DoNotOptimize(sink);
  std::sort(ns.begin(), ns.end());
  LatencyProfile p;
  p.p50 = Percentile(ns, 0.50);
  p.p90 = Percentile(ns, 0.90);
  p.p99 = Percentile(ns, 0.99);
  p.p999 = Percentile(ns, 0.999);
  return p;
}

}  // namespace

int main() {
  const size_t n = EnvSize("BENCH_CONC_KEYS", lif::BenchScaleKeys(2));
  const size_t ops = EnvSize("BENCH_CONC_OPS", std::max<size_t>(n / 10, 2000));
  const size_t num_shards = EnvSize("BENCH_CONC_SHARDS", 8);
  const size_t lat_samples = EnvSize("BENCH_CONC_LAT_SAMPLES", 200'000);
  const std::vector<size_t> thread_list = EnvThreadList();
  const int ratios[] = {0, 10, 50};

  printf(
      "== concurrent sweep: %zu lognormal keys, %zu ops/cell, shards=%zu, "
      "hw threads=%u ==\n",
      n, ops, num_shards, std::thread::hardware_concurrency());
  const std::vector<uint64_t> keys = data::GenLognormal(n);

  std::vector<bench_json::Entry> json;
  auto emit = [&json](const std::string& name, double ns) {
    json.push_back(bench_json::Entry{name, ns, ns > 0.0 ? 1e9 / ns : 0.0});
  };

  lif::Table table({"config", "insert%", "threads", "agg ns/op", "Mops/s",
                    "speedup", "merges", "freezes", "contention%"});
  bool all_consistent = true;
  double sharded_t1_ins10 = 0.0, sharded_t8_ins10 = 0.0;

  const auto leaf_models = std::max<size_t>(64, n / 10);
  dynamic::MergePolicy policy;
  policy.min_delta_entries = 2048;
  policy.max_delta_entries = 8192;

  for (const int pct : ratios) {
    const lif::ReadWriteWorkload w = lif::MakeReadWriteWorkload(
        keys, ops, pct / 100.0, 1 << 14, 977 + static_cast<uint64_t>(pct));
    table.AddSection("insert ratio " + std::to_string(pct) + "%");

    for (int cand = 0; cand < 2; ++cand) {
      const bool sharded = cand == 1;
      const std::string name =
          sharded ? "sharded[" + std::to_string(num_shards) + " x rmi]"
                  : "concurrent[rmi]";
      double t1_ns = 0.0;
      for (const size_t threads : thread_list) {
        CellResult r;
        index::ConcurrentIndexStats cs;
        if (sharded) {
          ShardedRmi::Config cfg;
          cfg.inner.base.num_leaf_models = std::max<size_t>(
              64, leaf_models / std::max<size_t>(num_shards, 1));
          cfg.inner.policy = policy;
          cfg.inner.log_cap = 1024;
          cfg.num_shards = num_shards;
          ShardedRmi idx;
          if (!idx.Build(w.base, cfg).ok()) {
            fprintf(stderr, "sharded build failed\n");
            return 1;
          }
          r = RunCell(idx, w, threads);
          r.consistent = CheckCell(idx, w, r.inserted);
          cs = idx.ConcurrentStats();
        } else {
          ConcRmi::Config cfg;
          cfg.base.num_leaf_models = leaf_models;
          cfg.policy = policy;
          cfg.log_cap = 1024;
          ConcRmi idx;
          if (!idx.Build(w.base, cfg).ok()) {
            fprintf(stderr, "concurrent build failed\n");
            return 1;
          }
          r = RunCell(idx, w, threads);
          r.consistent = CheckCell(idx, w, r.inserted);
          cs = idx.ConcurrentStats();
        }
        r.merges = cs.merges;
        r.freezes = cs.freezes;
        r.contention = cs.WriterContentionRate();
        all_consistent &= r.consistent;
        if (threads == 1) t1_ns = r.agg_ns;
        const double speedup = r.agg_ns > 0.0 && t1_ns > 0.0
                                   ? t1_ns / r.agg_ns
                                   : 0.0;
        if (sharded && pct == 10 && threads == 1) sharded_t1_ins10 = r.agg_ns;
        if (sharded && pct == 10 && threads == 8) sharded_t8_ins10 = r.agg_ns;
        table.AddRow({name, std::to_string(pct), std::to_string(threads),
                      Fmt(r.agg_ns),
                      Fmt(r.agg_ns > 0.0 ? 1e3 / r.agg_ns : 0.0, 2),
                      Fmt(speedup, 2) + "x", std::to_string(r.merges),
                      std::to_string(r.freezes),
                      Fmt(r.contention * 100.0)});
        const std::string prefix = "concurrent/" +
                                   std::string(sharded ? "sharded" : "single") +
                                   "/ins" + std::to_string(pct) + "/t" +
                                   std::to_string(threads);
        emit(prefix + "/agg_ns", r.agg_ns);
      }
    }
  }
  table.Print();

  // ---- acceptance factor 1: sharded scaling at 10% inserts ----
  if (sharded_t1_ins10 > 0.0 && sharded_t8_ins10 > 0.0) {
    const double scaling = sharded_t1_ins10 / sharded_t8_ins10;
    printf(
        "\nsharded 10%%-insert aggregate throughput at 8 threads: %.2fx the "
        "1-thread cell (acceptance bar >= 4x on >= 8 hardware threads; "
        "this host has %u)\n",
        scaling, std::thread::hardware_concurrency());
    emit("concurrent/sharded/ins10/scaling_t8_vs_t1", scaling);
  }

  // ---- read latency during an active background merge ----
  {
    ConcRmi::Config cfg;
    cfg.base.num_leaf_models = leaf_models;
    cfg.policy.trigger = dynamic::MergeTrigger::kManual;
    cfg.log_cap = 4096;
    ConcRmi idx;
    if (!idx.Build(keys, cfg).ok()) {
      fprintf(stderr, "latency index build failed\n");
      return 1;
    }
    const auto probes = data::SampleKeys(keys, 1 << 14, 31);
    const LatencyProfile quiet = SampleReadLatency(idx, probes, lat_samples);

    // Writer floods fresh keys and keeps a background merge in flight for
    // the whole sampling window.
    std::atomic<bool> stop{false};
    std::thread storm([&] {
      Xorshift128Plus rng(1234);
      uint64_t next_key = keys.back() + 1;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 2000; ++i) idx.Insert(next_key += 1 + rng.NextBounded(16));
        idx.RequestMerge();
      }
    });
    const LatencyProfile busy = SampleReadLatency(idx, probes, lat_samples);
    stop.store(true);
    storm.join();
    idx.WaitForMerges();

    lif::Table lat({"phase", "p50 ns", "p90 ns", "p99 ns", "p99.9 ns"});
    lat.AddRow({"quiet", Fmt(quiet.p50), Fmt(quiet.p90), Fmt(quiet.p99),
                Fmt(quiet.p999)});
    lat.AddRow({"during merge", Fmt(busy.p50), Fmt(busy.p90), Fmt(busy.p99),
                Fmt(busy.p999)});
    printf("\nreader latency while the merge worker rebuilds the base:\n");
    lat.Print();
    const double factor = quiet.p99 > 0.0 ? busy.p99 / quiet.p99 : 0.0;
    printf(
        "reader p99 during merge: %.1f ns vs %.1f ns quiet (%.2fx; "
        "acceptance bar <= 2x on a multi-core host)\n",
        busy.p99, quiet.p99, factor);
    emit("concurrent/read_latency/quiet/p99_ns", quiet.p99);
    emit("concurrent/read_latency/during_merge/p99_ns", busy.p99);
    emit("concurrent/read_latency/p99_factor", factor);
    const auto cs = idx.ConcurrentStats();
    printf("merge cycles during storm: %llu, states reclaimed: %llu\n",
           static_cast<unsigned long long>(cs.merges),
           static_cast<unsigned long long>(cs.states_reclaimed));
  }

  // ---- skewed insert streams: online rebalance off vs on ----
  {
    // A deliberately drift-heavy setup: the base is a quarter of the key
    // set, the storm inserts twice the base count, so skew that piles
    // onto a few shards is visible in max/mean mass, not lost in the
    // build-time bulk.
    std::vector<uint64_t> skew_base;
    skew_base.reserve(keys.size() / 4 + 1);
    for (size_t i = 0; i < keys.size(); i += 4) skew_base.push_back(keys[i]);
    const size_t sk_ops = std::max<size_t>(skew_base.size() * 2, 10'000);
    const double factor = 2.0;
    struct SkewCase {
      const char* name;
      lif::InsertSkew skew;
    };
    SkewCase cases[2];
    cases[0].name = "zipf(1.2)";
    cases[0].skew.kind = lif::InsertSkew::Kind::kZipf;
    cases[0].skew.zipf_s = 1.2;
    cases[1].name = "hotspot(5%)";
    cases[1].skew.kind = lif::InsertSkew::Kind::kMovingHotspot;
    cases[1].skew.hotspot_fraction = 0.05;

    printf(
        "\n== skewed insert storms: %zu base keys + %zu skewed inserts, "
        "rebalance factor %.1f ==\n",
        skew_base.size(), sk_ops, factor);
    lif::Table st({"skew", "rebalance", "agg ns/op", "final imb", "peak imb",
                   "shards", "splits", "coalesces"});
    double zipf_imb_on = 0.0, zipf_imb_off = 0.0;
    for (const SkewCase& sc : cases) {
      const lif::ReadWriteWorkload w = lif::MakeSkewedReadWriteWorkload(
          skew_base, sk_ops, 1.0, 1 << 14, 4242, sc.skew);
      for (const bool rebal : {false, true}) {
        ShardedRmi::Config cfg;
        cfg.inner.base.num_leaf_models = std::max<size_t>(
            64, leaf_models / (4 * std::max<size_t>(num_shards, 1)));
        cfg.inner.policy = policy;
        cfg.inner.log_cap = 1024;
        cfg.num_shards = num_shards;
        cfg.rebalance.enabled = rebal;
        cfg.rebalance.max_imbalance = factor;
        cfg.rebalance.min_split_keys = 2048;
        cfg.rebalance.check_stride = 256;
        ShardedRmi idx;
        if (!idx.Build(skew_base, cfg).ok()) {
          fprintf(stderr, "skewed sharded build failed\n");
          return 1;
        }
        // Peak-imbalance monitor: the moving hotspot balances out by the
        // end of the stream, so the transient max is the interesting
        // number there.
        std::atomic<bool> mon_stop{false};
        std::atomic<uint64_t> peak_milli{1000};
        std::thread monitor([&] {
          while (!mon_stop.load(std::memory_order_relaxed)) {
            const auto imb =
                static_cast<uint64_t>(idx.CurrentImbalance() * 1000.0);
            uint64_t prev = peak_milli.load(std::memory_order_relaxed);
            while (imb > prev &&
                   !peak_milli.compare_exchange_weak(prev, imb)) {
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        });
        const double agg_ns = lif::RunMixedStreamNs(idx, w, 4);
        // One request catches drift the last check_stride missed; the
        // self-re-arming worker then drains every remaining action.
        if (rebal) idx.RequestRebalance();
        idx.WaitForRebalances();
        idx.WaitForMerges();
        mon_stop.store(true);
        monitor.join();
        const size_t inserted = static_cast<size_t>(
            std::count_if(w.is_insert.begin(), w.is_insert.end(),
                          [](uint8_t op) { return op != 0; }));
        all_consistent &= CheckCell(idx, w, inserted);
        const auto cs = idx.ConcurrentStats();
        const double peak =
            static_cast<double>(peak_milli.load()) / 1000.0;
        if (sc.skew.kind == lif::InsertSkew::Kind::kZipf) {
          (rebal ? zipf_imb_on : zipf_imb_off) = cs.shard_imbalance;
        }
        st.AddRow({sc.name, rebal ? "on" : "off", Fmt(agg_ns),
                   Fmt(cs.shard_imbalance, 2), Fmt(peak, 2),
                   std::to_string(cs.shards),
                   std::to_string(cs.shard_splits),
                   std::to_string(cs.shard_coalesces)});
        const std::string prefix =
            std::string("concurrent/sharded/skew_") +
            (sc.skew.kind == lif::InsertSkew::Kind::kZipf ? "zipf"
                                                          : "hotspot") +
            "/rebal_" + (rebal ? "on" : "off");
        emit(prefix + "/agg_ns", agg_ns);
        emit(prefix + "/imbalance_final", cs.shard_imbalance);
        emit(prefix + "/imbalance_peak", peak);
        emit(prefix + "/splits", static_cast<double>(cs.shard_splits));
        emit(prefix + "/coalesces",
             static_cast<double>(cs.shard_coalesces));
      }
    }
    st.Print();
    printf(
        "zipf final imbalance: %.2f with rebalance vs %.2f without "
        "(acceptance bar: <= %.1f with rebalancing on, exceeded without)\n",
        zipf_imb_on, zipf_imb_off, factor);
    if (zipf_imb_on > factor * 1.05) {
      fprintf(stderr,
              "WARN: rebalanced zipf imbalance %.2f above the %.1f bar\n",
              zipf_imb_on, factor);
    }
  }

  // ---- batched lookups: per-key routing vs shard-grouped dispatch ----
  {
    ShardedRmi::Config cfg;
    cfg.inner.base.num_leaf_models = std::max<size_t>(
        64, leaf_models / std::max<size_t>(num_shards, 1));
    cfg.inner.policy.trigger = dynamic::MergeTrigger::kManual;
    cfg.inner.log_cap = 1024;
    cfg.num_shards = num_shards;
    ShardedRmi idx;
    if (!idx.Build(keys, cfg).ok()) {
      fprintf(stderr, "batch-lookup index build failed\n");
      return 1;
    }
    const std::vector<uint64_t> probes = data::SampleKeys(keys, 1 << 14, 47);
    const double perkey_ns = lif::MeasureNsPerOp(
        probes, 3, [&](uint64_t q) { return idx.Lookup(q); });
    std::vector<size_t> out(probes.size());
    const double batched_ns = lif::MeasureBatchNsPerOp(probes.size(), [&] {
      idx.LookupBatch(probes, out);
      return out.data();
    });
    const double speedup = batched_ns > 0.0 ? perkey_ns / batched_ns : 0.0;
    printf(
        "\nuniform batched reads over %zu shards: per-key %.1f ns/key vs "
        "shard-grouped LookupBatch %.1f ns/key (%.2fx; acceptance bar: "
        "grouped faster)\n",
        idx.num_shards(), perkey_ns, batched_ns, speedup);
    emit("concurrent/sharded/lookup/perkey_ns", perkey_ns);
    emit("concurrent/sharded/lookup/grouped_ns", batched_ns);
    emit("concurrent/sharded/lookup/batch_speedup_factor", speedup);
  }

  // ---- point sweep: the concurrent point front-end over the chained
  // and cuckoo families, mixed Find/Insert at 10% inserts ----
  {
    std::vector<hash::Record> records;
    records.reserve(keys.size());
    for (const uint64_t k : keys) {
      // Payload is a function of the key so the quiesced check catches
      // torn or stale records, not just missing ones.
      records.push_back(hash::Record{k, k * 0x9E3779B97F4A7C15ULL + 1, 0});
    }
    const lif::PointReadWriteWorkload pw = lif::MakePointReadWriteWorkload(
        records, ops, 0.10, 1 << 14, 577);
    // The schedule is budget-guarded and the harness consumes insert
    // slots in prefix order, so every scheduled insert executes.
    const size_t executed = static_cast<size_t>(
        std::count_if(pw.is_insert.begin(), pw.is_insert.end(),
                      [](uint8_t op) { return op != 0; }));
    printf(
        "\n== concurrent point sweep: %zu records, %zu ops/cell, 10%% "
        "inserts ==\n",
        records.size(), ops);
    lif::Table pt({"config", "threads", "agg ns/op", "Mops/s", "speedup",
                   "rebuilds", "freezes", "contention%"});
    // Quiesced exact-map check: records must come back with the payload
    // they were inserted with, and the live count must reconcile.
    auto check_point = [&](auto& idx) {
      idx.WaitForRebuilds();
      if (!idx.last_rebuild_status().ok()) {
        fprintf(stderr, "FAIL: point rebuild: %s\n",
                idx.last_rebuild_status().message().c_str());
        return false;
      }
      if (idx.num_records() != pw.base.size() + executed) {
        fprintf(stderr, "FAIL: point live count %zu != %zu\n",
                idx.num_records(), pw.base.size() + executed);
        return false;
      }
      Xorshift128Plus rng(4243);
      for (int i = 0; i < 2000; ++i) {
        const hash::Record& want =
            i < 1000 && executed > 0
                ? pw.inserts[rng.NextBounded(executed)]
                : pw.base[rng.NextBounded(pw.base.size())];
        hash::Record got{};
        if (!idx.Find(want.key, &got) || got.payload != want.payload) {
          fprintf(stderr, "FAIL: point record %llu wrong or missing\n",
                  static_cast<unsigned long long>(want.key));
          return false;
        }
      }
      return true;
    };
    for (int cand = 0; cand < 2; ++cand) {
      const bool cuckoo = cand == 1;
      const std::string name = cuckoo ? "concurrent-point[cuckoo]"
                                      : "concurrent-point[chained]";
      const std::string tag = cuckoo ? "cuckoo" : "chained";
      double t1_ns = 0.0;
      for (const size_t threads : thread_list) {
        double agg_ns = 0.0;
        index::ConcurrentIndexStats cs;
        bool ok = true;
        if (cuckoo) {
          using ConcCuckoo =
              concurrent::ConcurrentPointIndex<hash::CuckooMap<hash::Record>>;
          ConcCuckoo::Config cfg;
          cfg.base.load_factor = 0.95;
          cfg.base.careful = true;
          cfg.base.seed = 4201;
          cfg.log_cap = 1024;
          cfg.rebuild_entries = 8192;
          ConcCuckoo idx;
          if (!idx.Build(std::span<const hash::Record>(pw.base), cfg).ok()) {
            fprintf(stderr, "concurrent point cuckoo build failed\n");
            return 1;
          }
          Timer timer;
          lif::RunPointMixedStreamNs(idx, pw, threads);
          idx.WaitForRebuilds();
          agg_ns = timer.ElapsedNanos() /
                   static_cast<double>(
                       std::max<size_t>(pw.is_insert.size(), 1));
          ok = check_point(idx);
          cs = idx.ConcurrentStats();
        } else {
          using ConcChained =
              concurrent::ConcurrentPointIndex<hash::ChainedHashMap>;
          ConcChained::Config cfg;
          cfg.base.num_slots = std::max<size_t>(1, pw.base.size());
          cfg.base.hash.kind = hash::HashKind::kRandom;
          cfg.base.hash.seed = 4201;
          cfg.log_cap = 1024;
          cfg.rebuild_entries = 8192;
          ConcChained idx;
          if (!idx.Build(std::span<const hash::Record>(pw.base), cfg).ok()) {
            fprintf(stderr, "concurrent point chained build failed\n");
            return 1;
          }
          Timer timer;
          lif::RunPointMixedStreamNs(idx, pw, threads);
          idx.WaitForRebuilds();
          agg_ns = timer.ElapsedNanos() /
                   static_cast<double>(
                       std::max<size_t>(pw.is_insert.size(), 1));
          ok = check_point(idx);
          cs = idx.ConcurrentStats();
        }
        all_consistent &= ok;
        if (threads == 1) t1_ns = agg_ns;
        const double speedup =
            agg_ns > 0.0 && t1_ns > 0.0 ? t1_ns / agg_ns : 0.0;
        pt.AddRow({name, std::to_string(threads), Fmt(agg_ns),
                   Fmt(agg_ns > 0.0 ? 1e3 / agg_ns : 0.0, 2),
                   Fmt(speedup, 2) + "x",
                   std::to_string(cs.background_merges),
                   std::to_string(cs.freezes),
                   Fmt(cs.WriterContentionRate() * 100.0)});
        const std::string prefix = "concurrent/point/" + tag + "/ins10/t" +
                                   std::to_string(threads);
        emit(prefix + "/agg_ns", agg_ns);
        emit(prefix + "/rebuilds", static_cast<double>(cs.background_merges));
      }
    }
    pt.Print();
  }

  // ---- existence sweep: the rebuildable filter front-end, mixed
  // MightContain/Insert at 10% inserts across background rebuilds ----
  {
    const size_t en = std::min<size_t>(n, 200'000);
    std::vector<std::string> ekeys;
    std::vector<std::string> enon;
    ekeys.reserve(en);
    enon.reserve(1 << 14);
    char kbuf[32];
    for (size_t i = 0; i < en; ++i) {
      snprintf(kbuf, sizeof(kbuf), "k%018llu",
               static_cast<unsigned long long>(keys[i]));
      ekeys.emplace_back(kbuf);
    }
    Xorshift128Plus nrng(910);
    for (size_t i = 0; i < (1u << 14); ++i) {
      // The "n" prefix keeps non-keys disjoint from every key string.
      snprintf(kbuf, sizeof(kbuf), "n%018llu",
               static_cast<unsigned long long>(nrng.Next()));
      enon.emplace_back(kbuf);
    }
    const lif::ExistenceReadWriteWorkload ew =
        lif::MakeExistenceReadWriteWorkload(ekeys, enon, ops, 0.10, 1 << 14,
                                            733);
    const size_t executed = static_cast<size_t>(
        std::count_if(ew.is_insert.begin(), ew.is_insert.end(),
                      [](uint8_t op) { return op != 0; }));
    printf(
        "\n== concurrent existence sweep: %zu corpus keys, %zu ops/cell, "
        "10%% inserts ==\n",
        ew.base.size(), ops);
    lif::Table et({"config", "threads", "agg ns/op", "Mops/s", "speedup",
                   "rebuilds", "freezes", "fpr%"});
    double t1_ns = 0.0;
    for (const size_t threads : thread_list) {
      using ConcBloom = concurrent::RebuildableExistence<bloom::BloomFilter>;
      ConcBloom::Config cfg;
      cfg.rebuild = concurrent::PlainBloomRebuilder(0.01);
      // Low staleness so even the CI smoke preset crosses the rebuild
      // threshold and the sweep exercises a hot filter swap.
      cfg.staleness = 0.01;
      cfg.log_cap = 1024;
      ConcBloom f;
      if (!f.Build(std::span<const std::string>(ew.base), cfg).ok()) {
        fprintf(stderr, "concurrent existence build failed\n");
        return 1;
      }
      Timer timer;
      lif::RunExistenceMixedStreamNs(f, ew, threads);
      f.WaitForRebuilds();
      const double agg_ns =
          timer.ElapsedNanos() /
          static_cast<double>(std::max<size_t>(ew.is_insert.size(), 1));
      // Zero-false-negative check over the full corpus plus every
      // executed insert: the §5 guarantee must hold across filter swaps.
      bool ok = f.last_rebuild_status().ok();
      if (!ok) {
        fprintf(stderr, "FAIL: existence rebuild: %s\n",
                f.last_rebuild_status().message().c_str());
      }
      for (const std::string& k : ew.base) {
        if (!f.MightContain(std::string_view(k))) {
          fprintf(stderr, "FAIL: false negative on corpus key %s\n",
                  k.c_str());
          ok = false;
          break;
        }
      }
      for (size_t i = 0; ok && i < executed; ++i) {
        if (!f.MightContain(std::string_view(ew.inserts[i]))) {
          fprintf(stderr, "FAIL: false negative on inserted key %s\n",
                  ew.inserts[i].c_str());
          ok = false;
        }
      }
      if (f.num_keys() != ew.base.size() + executed) {
        fprintf(stderr, "FAIL: existence key count %zu != %zu\n",
                f.num_keys(), ew.base.size() + executed);
        ok = false;
      }
      all_consistent &= ok;
      const double fpr = f.MeasuredFpr(enon);
      const auto cs = f.ConcurrentStats();
      if (threads == 1) t1_ns = agg_ns;
      const double speedup =
          agg_ns > 0.0 && t1_ns > 0.0 ? t1_ns / agg_ns : 0.0;
      et.AddRow({"concurrent-existence[plain bloom]",
                 std::to_string(threads), Fmt(agg_ns),
                 Fmt(agg_ns > 0.0 ? 1e3 / agg_ns : 0.0, 2),
                 Fmt(speedup, 2) + "x",
                 std::to_string(cs.background_merges),
                 std::to_string(cs.freezes), Fmt(fpr * 100.0, 2)});
      const std::string prefix =
          "concurrent/existence/plain/ins10/t" + std::to_string(threads);
      emit(prefix + "/agg_ns", agg_ns);
      emit(prefix + "/rebuilds", static_cast<double>(cs.background_merges));
      emit(prefix + "/fpr", fpr);
    }
    et.Print();
  }

  if (const char* env = getenv("BENCH_MICRO_JSON")) {
    const char* path = bench_json::ResolvePath(env, "BENCH_concurrent.json");
    if (bench_json::Write(path, json)) {
      fprintf(stderr, "wrote %s\n", path);
    } else {
      fprintf(stderr, "failed to write %s\n", path);
      return 1;
    }
  }
  if (!all_consistent) {
    fprintf(stderr, "consistency checks FAILED\n");
    return 1;
  }
  return 0;
}
