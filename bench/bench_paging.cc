// Appendix D.2: learned index over paged storage. Compares page reads and
// bytes read per lookup for (a) the learned index with the translation
// table and error-bounded slice reads, against (b) a conventional sparse
// B-Tree over page fence keys reading whole pages.

#include <cstdio>
#include <vector>

#include "btree/readonly_btree.h"
#include "data/datasets.h"
#include "lif/measure.h"
#include "paging/paged_index.h"
#include "search/search.h"

using namespace li;

int main() {
  const size_t n = lif::BenchScaleKeys();
  printf("Paged learned index (Appendix D.2), %zu keys\n", n);
  lif::Table table({"keys/page", "Index", "index MB", "page reads/lookup",
                    "KB read/lookup"});

  const auto keys = data::GenWeblog(n);
  const auto probes = data::SampleKeys(keys, 100'000);

  for (const size_t kpp : {256, 1024, 4096}) {
    paging::SimulatedDisk disk;
    if (!disk.Store(keys, kpp).ok()) continue;

    // Learned path.
    paging::PagedLearnedIndex learned;
    if (!learned.Build(keys, &disk, std::max<size_t>(1024, n / 500)).ok()) {
      continue;
    }
    disk.ResetCounters();
    size_t found = 0;
    for (const uint64_t q : probes) found += learned.Find(q).has_value();
    {
      char c1[32], c2[32], c3[32], c4[32];
      snprintf(c1, sizeof(c1), "%zu", kpp);
      snprintf(c2, sizeof(c2), "%.3f", learned.SizeBytes() / 1e6);
      snprintf(c3, sizeof(c3), "%.2f",
               double(disk.page_reads()) / probes.size());
      snprintf(c4, sizeof(c4), "%.2f",
               double(disk.bytes_read()) / probes.size() / 1024.0);
      table.AddRow({c1, "learned + translation", c2, c3, c4});
    }

    // Conventional path: sparse fence-key B-Tree, whole-page reads.
    std::vector<uint64_t> fences;
    for (size_t lp = 0; lp < disk.num_logical_pages(); ++lp) {
      fences.push_back(disk.FirstKeyOfLogicalPage(lp));
    }
    btree::ReadOnlyBTree fence_tree;
    if (!fence_tree.Build(fences, 128).ok()) continue;
    disk.ResetCounters();
    size_t found_bt = 0;
    for (const uint64_t q : probes) {
      size_t lp = fence_tree.LowerBound(q);
      if (lp == fences.size() || fences[lp] > q) lp = lp == 0 ? 0 : lp - 1;
      const auto page = disk.ReadPage(disk.PhysicalPageOf(lp));
      const size_t idx = search::BinarySearch(page.data(), 0, page.size(), q);
      found_bt += idx < page.size() && page[idx] == q;
    }
    {
      char c1[32], c2[32], c3[32], c4[32];
      snprintf(c1, sizeof(c1), "%zu", kpp);
      snprintf(c2, sizeof(c2), "%.3f",
               (fence_tree.SizeBytes() + fences.size() * 8) / 1e6);
      snprintf(c3, sizeof(c3), "%.2f",
               double(disk.page_reads()) / probes.size());
      snprintf(c4, sizeof(c4), "%.2f",
               double(disk.bytes_read()) / probes.size() / 1024.0);
      table.AddRow({c1, "fence B-Tree, full pages", c2, c3, c4});
    }
    if (found != probes.size() || found_bt != probes.size()) {
      printf("WARNING: found %zu / %zu (learned) vs %zu (btree)\n", found,
             probes.size(), found_bt);
    }
  }
  table.Print();
  printf("(Appendix D.2: \"use the predicted position with the min- and\n"
         " max-error to reduce the number of bytes ... read from a large\n"
         " page, so that the impact of the page size might be negligible\")\n");
  return 0;
}
