// Appendix E: Bloom filter with model-hashes — discretize the classifier
// into an m-bit bitmap, back it with a Bloom filter sized for
// FPR_B = p*/FPR_m, and sweep m. Reports the total size at p* = 1% and
// 0.1% next to the §5.1.1 learned filter and the standard filter.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bloom/learned_bloom.h"
#include "bloom/model_hash_bloom.h"
#include "classifier/ngram_logistic.h"
#include "common/random.h"
#include "data/strings.h"
#include "lif/measure.h"

using namespace li;

int main() {
  size_t num_keys = 50'000;
  if (const char* env = getenv("REPRO_BLOOM_KEYS")) {
    const long v = atol(env);
    if (v > 0) num_keys = static_cast<size_t>(v);
  }
  printf("Appendix E reproduction: model-hash Bloom filters (%zu keys)\n",
         num_keys);
  data::UrlCorpus corpus = data::GenUrls(num_keys, num_keys);
  std::vector<std::string> negatives = corpus.random_negatives;
  negatives.insert(negatives.end(), corpus.whitelisted.begin(),
                   corpus.whitelisted.end());
  {
    Xorshift128Plus shuffle_rng(5);
    for (size_t i = negatives.size(); i > 1; --i) {
      std::swap(negatives[i - 1], negatives[shuffle_rng.NextBounded(i)]);
    }
  }
  const size_t third = negatives.size() / 3;
  const std::vector<std::string> train_neg(negatives.begin(),
                                           negatives.begin() + third);
  const std::vector<std::string> valid_neg(negatives.begin() + third,
                                           negatives.begin() + 2 * third);
  const std::vector<std::string> test_neg(negatives.begin() + 2 * third,
                                          negatives.end());

  classifier::NgramConfig ngram_config;
  ngram_config.num_buckets = std::max<size_t>(1024, num_keys / 16);
  classifier::NgramLogistic model;
  if (!model.Train(corpus.keys, train_neg, ngram_config).ok()) return 1;

  lif::Table table({"Construction", "p*", "m (bits)", "Size (MB)", "vs Bloom",
                    "Test FPR"});
  for (const double p : {0.01, 0.001}) {
    bloom::BloomFilter plain;
    if (!plain.Init(corpus.keys.size(), p).ok()) continue;
    const double plain_mb = plain.SizeBytes() / 1e6;
    char ps[16];
    snprintf(ps, sizeof(ps), "%.1f%%", 100.0 * p);
    {
      char s[32];
      snprintf(s, sizeof(s), "%.3f", plain_mb);
      table.AddRow({"standard Bloom", ps, "-", s, "1.00x", "-"});
    }
    {
      bloom::LearnedBloomFilter<classifier::NgramLogistic> learned;
      if (learned.Build(&model, corpus.keys, valid_neg, p).ok()) {
        char s[32], r[32], tf[32];
        snprintf(s, sizeof(s), "%.3f", learned.SizeBytes() / 1e6);
        snprintf(r, sizeof(r), "%.2fx",
                 learned.SizeBytes() / 1e6 / plain_mb);
        snprintf(tf, sizeof(tf), "%.2f%%",
                 100.0 * learned.MeasuredFpr(test_neg));
        table.AddRow({"classifier + overflow (5.1.1)", ps, "-", s, r, tf});
      }
    }
    // m sweep around the paper's 1e6 (scaled by key count vs 1.7M).
    for (const double scale : {0.25, 0.5, 1.0, 2.0}) {
      const uint64_t m = static_cast<uint64_t>(
          scale * 1e6 * static_cast<double>(num_keys) / 1.7e6);
      bloom::ModelHashBloomFilter<classifier::NgramLogistic> mh;
      if (!mh.Build(&model, corpus.keys, valid_neg, p, std::max<uint64_t>(m, 1024))
               .ok()) {
        continue;
      }
      char ms[32], s[32], r[32], tf[32];
      snprintf(ms, sizeof(ms), "%llu",
               static_cast<unsigned long long>(mh.bitmap_bits()));
      snprintf(s, sizeof(s), "%.3f", mh.SizeBytes() / 1e6);
      snprintf(r, sizeof(r), "%.2fx", mh.SizeBytes() / 1e6 / plain_mb);
      snprintf(tf, sizeof(tf), "%.2f%%", 100.0 * mh.MeasuredFpr(test_neg));
      table.AddRow({"model-hash sandwich (5.1.2)", ps, ms, s, r, tf});
    }
  }
  table.Print();
  printf("(paper: model-hash at p*=1%% -> 41%% smaller; at 0.1%% -> 27.4%% "
         "smaller)\n");
  return 0;
}
