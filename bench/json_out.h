// Shared machine-readable bench output: every bench that participates in
// the perf-tracking CI pipeline emits the same one-document shape,
//   {"benchmarks": [{"name", "ns_per_op", "items_per_second"}]}
// so BENCH_*.json artifacts accumulate comparably across PRs. The
// BENCH_MICRO_JSON environment variable toggles emission: unset = console
// only, "1"/"" = the bench's default file name, anything else = that path.

#ifndef LI_BENCH_JSON_OUT_H_
#define LI_BENCH_JSON_OUT_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace li::bench_json {

struct Entry {
  std::string name;
  double ns_per_op = 0.0;
  double items_per_second = 0.0;
};

/// Maps the BENCH_MICRO_JSON value to an output path ("1" or empty selects
/// the bench's default file name).
inline const char* ResolvePath(const char* env_value,
                               const char* default_path) {
  return (env_value == nullptr || *env_value == '\0' ||
          std::strcmp(env_value, "1") == 0)
             ? default_path
             : env_value;
}

/// Writes the entries as one JSON document; false on I/O failure.
inline bool Write(const char* path, const std::vector<Entry>& entries) {
  FILE* f = fopen(path, "w");
  if (f == nullptr) return false;
  fprintf(f, "{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    fprintf(f,
            "    {\"name\": \"%s\", \"ns_per_op\": %.3f, "
            "\"items_per_second\": %.1f}%s\n",
            e.name.c_str(), e.ns_per_op, e.items_per_second,
            i + 1 < entries.size() ? "," : "");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  return true;
}

}  // namespace li::bench_json

#endif  // LI_BENCH_JSON_OUT_H_
