// Shared machine-readable bench output: every bench that participates in
// the perf-tracking CI pipeline emits the same one-document shape,
//   {"cpu_features": {...}, "benchmarks": [{"name", "ns_per_op",
//    "items_per_second"}]}
// so BENCH_*.json artifacts accumulate comparably across PRs, and every
// result is attributable to the SIMD dispatch level that produced it. The
// BENCH_MICRO_JSON environment variable toggles emission: unset = console
// only, "1"/"" = the bench's default file name, anything else = that path.

#ifndef LI_BENCH_JSON_OUT_H_
#define LI_BENCH_JSON_OUT_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "simd/dispatch.h"

namespace li::bench_json {

struct Entry {
  std::string name;
  double ns_per_op = 0.0;
  double items_per_second = 0.0;
};

/// Maps the BENCH_MICRO_JSON value to an output path ("1" or empty selects
/// the bench's default file name).
inline const char* ResolvePath(const char* env_value,
                               const char* default_path) {
  return (env_value == nullptr || *env_value == '\0' ||
          std::strcmp(env_value, "1") == 0)
             ? default_path
             : env_value;
}

/// JSON string escaping for name fields: benchmark names carry template
/// arguments ("<...>"), slashes, and quotes from parameterized fixtures;
/// unescaped they silently produce unparseable documents.
inline std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

/// Writes the entries as one JSON document (with the host's CPU-feature /
/// dispatch-level attribution block); false on I/O failure.
inline bool Write(const char* path, const std::vector<Entry>& entries) {
  FILE* f = fopen(path, "w");
  if (f == nullptr) return false;
  const simd::CpuFeatures cpu = simd::DetectCpu();
  fprintf(f, "{\n  \"cpu_features\": {\n");
  fprintf(f, "    \"avx2\": %s,\n", cpu.avx2 ? "true" : "false");
  fprintf(f, "    \"fma\": %s,\n", cpu.fma ? "true" : "false");
  fprintf(f, "    \"avx512f\": %s,\n", cpu.avx512f ? "true" : "false");
  fprintf(f, "    \"avx512dq\": %s,\n", cpu.avx512dq ? "true" : "false");
  fprintf(f, "    \"active_level\": \"%s\",\n",
          simd::LevelName(simd::ActiveLevel()));
  fprintf(f, "    \"detected_level\": \"%s\",\n",
          simd::LevelName(simd::DetectedLevel()));
  fprintf(f, "    \"forced\": %s,\n", simd::IsForced() ? "true" : "false");
  fprintf(f, "    \"compiled_levels\": [");
  bool first = true;
  for (int l = 0; l < simd::kNumLevels; ++l) {
    const auto level = static_cast<simd::Level>(l);
    if (!simd::LevelCompiled(level)) continue;
    fprintf(f, "%s\"%s\"", first ? "" : ", ", simd::LevelName(level));
    first = false;
  }
  fprintf(f, "]\n  },\n");
  fprintf(f, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    fprintf(f,
            "    {\"name\": \"%s\", \"ns_per_op\": %.3f, "
            "\"items_per_second\": %.1f}%s\n",
            Escape(e.name).c_str(), e.ns_per_op, e.items_per_second,
            i + 1 < entries.size() ? "," : "");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  return true;
}

}  // namespace li::bench_json

#endif  // LI_BENCH_JSON_OUT_H_
