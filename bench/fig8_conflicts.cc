// Figure 8: reduction of hash conflicts — learned CDF hash (2-stage RMI,
// 100k second-stage linear models, no hidden layers) vs a MurmurHash3-like
// random hash, table sized at one slot per record, over the three integer
// datasets. Both families are built through the contract-wide
// hash::PointHash, the same config the point-index maps and the LIF
// synthesizer consume.

#include <cstdio>
#include <vector>

#include "data/datasets.h"
#include "hash/hash_fn.h"
#include "lif/measure.h"

using namespace li;

int main() {
  const size_t n = lif::BenchScaleKeys();
  printf("Figure 8 reproduction: reduction of conflicts (%zu keys/dataset)\n",
         n);
  lif::Table table(
      {"Dataset", "% Conflicts Hash Map", "% Conflicts Model", "Reduction"});

  for (const auto kind : {data::DatasetKind::kMaps, data::DatasetKind::kWeblog,
                          data::DatasetKind::kLognormal}) {
    const std::vector<uint64_t> keys = data::Generate(kind, n);

    hash::HashConfig random_cfg;
    random_cfg.kind = hash::HashKind::kRandom;
    random_cfg.seed = 7;
    hash::PointHash random_fn;
    if (!random_fn.Build(keys, keys.size(), random_cfg).ok()) continue;
    const double random_rate =
        hash::ConflictRate(keys, random_fn, keys.size());

    hash::HashConfig learned_cfg;
    learned_cfg.kind = hash::HashKind::kLearnedCdf;
    learned_cfg.cdf_leaf_models = std::min<size_t>(100'000, keys.size() / 10);
    hash::PointHash learned_fn;
    if (!learned_fn.Build(keys, keys.size(), learned_cfg).ok()) continue;
    const double model_rate =
        hash::ConflictRate(keys, learned_fn, keys.size());

    char c1[32], c2[32], c3[32];
    snprintf(c1, sizeof(c1), "%.1f%%", 100.0 * random_rate);
    snprintf(c2, sizeof(c2), "%.1f%%", 100.0 * model_rate);
    snprintf(c3, sizeof(c3), "%.1f%%",
             100.0 * (1.0 - model_rate / random_rate));
    table.AddRow({data::DatasetName(kind), c1, c2, c3});
  }
  table.Print();
  printf("(model execution cost: see the Model (ns) column of Figure 4)\n");
  return 0;
}
