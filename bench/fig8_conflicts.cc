// Figure 8: reduction of hash conflicts — learned CDF hash (2-stage RMI,
// 100k second-stage linear models, no hidden layers) vs a MurmurHash3-like
// random hash, table sized at one slot per record, over the three integer
// datasets.

#include <cstdio>
#include <vector>

#include "data/datasets.h"
#include "hash/hash_fn.h"
#include "lif/measure.h"

using namespace li;

int main() {
  const size_t n = lif::BenchScaleKeys();
  printf("Figure 8 reproduction: reduction of conflicts (%zu keys/dataset)\n",
         n);
  lif::Table table(
      {"Dataset", "% Conflicts Hash Map", "% Conflicts Model", "Reduction"});

  for (const auto kind : {data::DatasetKind::kMaps, data::DatasetKind::kWeblog,
                          data::DatasetKind::kLognormal}) {
    const std::vector<uint64_t> keys = data::Generate(kind, n);

    hash::RandomHash random_fn(keys.size(), 7);
    const double random_rate =
        hash::ConflictRate(keys, random_fn, keys.size());

    hash::LearnedHash<models::LinearModel> learned_fn;
    rmi::RmiConfig config;
    config.num_leaf_models = std::min<size_t>(100'000, keys.size() / 10);
    if (!learned_fn.Build(keys, keys.size(), config).ok()) continue;
    const double model_rate =
        hash::ConflictRate(keys, learned_fn, keys.size());

    char c1[32], c2[32], c3[32];
    snprintf(c1, sizeof(c1), "%.1f%%", 100.0 * random_rate);
    snprintf(c2, sizeof(c2), "%.1f%%", 100.0 * model_rate);
    snprintf(c3, sizeof(c3), "%.1f%%",
             100.0 * (1.0 - model_rate / random_rate));
    table.AddRow({data::DatasetName(kind), c1, c2, c3});
  }
  table.Print();
  printf("(model execution cost: see the Model (ns) column of Figure 4)\n");
  return 0;
}
