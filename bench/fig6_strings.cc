// Figure 6: learned index vs B-Tree over string document-IDs.
//
// Rows: string B-Tree at page sizes {32..256}; string RMI with 1 and 2
// hidden layers; hybrid variants with B-Tree replacement thresholds
// t = 128 and t = 64; and "Learned QS" — the best non-hybrid model with
// biased quaternary search. All RMI rows use 10k second-stage models,
// scaled down proportionally with dataset size.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "btree/string_btree.h"
#include "data/datasets.h"
#include "data/strings.h"
#include "lif/measure.h"
#include "rmi/string_rmi.h"

using namespace li;

namespace {

struct Row {
  std::string config;
  double size_mb, lookup_ns, model_ns;
};

}  // namespace

int main() {
  // Strings are ~10x slower to handle; default to n/4 of the integer scale
  // (paper used 10M doc-ids).
  const size_t n = std::max<size_t>(200'000, lif::BenchScaleKeys() / 4);
  printf("Figure 6 reproduction: string data (%zu doc-ids)\n", n);
  const auto ids = data::GenDocIds(n);
  std::vector<std::string> queries;
  {
    const auto probe_idx = data::GenUniform(50'000, 5, ids.size());
    for (const auto i : probe_idx) queries.push_back(ids[i]);
  }
  const size_t stage2 = std::max<size_t>(1000, n / 1000);

  std::vector<Row> rows;
  double ref_size = 1.0, ref_lookup = 1.0;
  lif::Table table({"Config", "Size (MB)", "Lookup (ns)", "Model (ns)"});
  table.AddSection("Btree");

  for (const size_t page : {32, 64, 128, 256}) {
    btree::StringBTree tree;
    if (!tree.Build(ids, page).ok()) continue;
    Row r;
    r.config = "page size: " + std::to_string(page);
    r.size_mb = tree.SizeBytes() / 1e6;
    r.model_ns = lif::MeasureNsPerOp(
        queries, 1, [&](const std::string& q) { return tree.FindPage(q); });
    r.lookup_ns = lif::MeasureNsPerOp(
        queries, 1, [&](const std::string& q) { return tree.LowerBound(q); });
    if (page == 128) {
      ref_size = r.size_mb;
      ref_lookup = r.lookup_ns;
    }
    rows.push_back(r);
  }

  auto run_rmi = [&](const char* label, int hidden_layers, int64_t threshold,
                     search::Strategy strategy) {
    rmi::StringRmiConfig config;
    config.num_leaf_models = stage2;
    config.strategy = strategy;
    config.hybrid_threshold = threshold;
    config.top_nn.epochs = 10;
    if (hidden_layers >= 1) config.top_nn.hidden.push_back(24);
    if (hidden_layers >= 2) config.top_nn.hidden.push_back(16);
    rmi::StringRmi index;
    if (!index.Build(ids, config).ok()) return;
    Row r;
    r.config = label;
    r.size_mb = index.SizeBytes() / 1e6;
    r.model_ns = lif::MeasureNsPerOp(
        queries, 1, [&](const std::string& q) { return index.Predict(q).pos; });
    r.lookup_ns = lif::MeasureNsPerOp(
        queries, 1, [&](const std::string& q) { return index.LowerBound(q); });
    rows.push_back(r);
  };

  run_rmi("1 hidden layer", 1, 0, search::Strategy::kBiasedBinary);
  run_rmi("2 hidden layers", 2, 0, search::Strategy::kBiasedBinary);
  run_rmi("t=128, 1 hidden layer", 1, 128, search::Strategy::kBiasedBinary);
  run_rmi("t=128, 2 hidden layers", 2, 128, search::Strategy::kBiasedBinary);
  run_rmi("t= 64, 1 hidden layer", 1, 64, search::Strategy::kBiasedBinary);
  run_rmi("t= 64, 2 hidden layers", 2, 64, search::Strategy::kBiasedBinary);
  run_rmi("Learned QS, 1 hidden layer", 1, 0,
          search::Strategy::kBiasedQuaternary);

  size_t i = 0;
  for (const Row& r : rows) {
    if (i == 4) table.AddSection("Learned Index");
    if (i == 6) table.AddSection("Hybrid Index");
    if (i == 10) table.AddSection("Learned QS");
    table.AddRow({r.config, lif::Table::WithFactor(r.size_mb, r.size_mb / ref_size),
                  lif::Table::WithFactor(r.lookup_ns, ref_lookup / r.lookup_ns, 0),
                  lif::Table::WithPercent(r.model_ns,
                                          100.0 * r.model_ns / r.lookup_ns)});
    ++i;
  }
  table.Print();
  return 0;
}
