// Figure 4: Learned Index vs B-Tree on the three integer datasets
// (Maps / Weblog / Lognormal).
//
// Rows: read-optimized B-Tree with page sizes {32..512}, and 2-stage RMI
// configurations. The first four RMI rows preserve the paper's
// keys-per-leaf ratios (10k/50k/100k/200k second-stage models over 200M
// keys); a final row adds the speed-optimal fine-grained configuration for
// this scale. Columns: size MB, total lookup ns, model-execution ns with
// its share of total — with factors against the paper's reference point,
// the page-128 B-Tree.
//
// Top models follow the paper's grid-search outcome ("simple (0 hidden
// layers) to semi-complex (2 hidden layers and 8- or 16-wide) models for
// the first stage work the best", §3.7.1): linear tops for the
// near-linear Maps/Weblog CDFs, a 1x8 ReLU net for the heavy-tailed
// Lognormal CDF.
//
// Scale: REPRO_SCALE_M million keys (default 2; paper used 200). Note on
// interpreting results at small scale: with 2M keys the whole B-Tree is
// cache-resident, which flatters it; the paper's larger speedups reappear
// as REPRO_SCALE_M grows and the B-Tree's lower levels start missing.

#include <cstdio>
#include <vector>

#include "btree/readonly_btree.h"
#include "data/datasets.h"
#include "lif/measure.h"
#include "rmi/rmi.h"

using namespace li;

namespace {

struct Row {
  std::string config;
  double size_mb;
  double lookup_ns;
  double model_ns;
};

template <typename TopModel>
bool RunLearned(const std::vector<uint64_t>& keys,
                const std::vector<uint64_t>& queries, size_t stage2,
                const rmi::RmiConfig& base, std::string label, Row* row) {
  rmi::RmiConfig config = base;
  config.num_leaf_models = stage2;
  rmi::Rmi<TopModel> index;
  if (!index.Build(keys, config).ok()) return false;
  row->config = std::move(label);
  row->size_mb = index.SizeBytes() / 1e6;
  row->model_ns = lif::MeasureNsPerOp(
      queries, 2, [&](uint64_t q) { return index.Predict(q).pos; });
  row->lookup_ns = lif::MeasureNsPerOp(
      queries, 2, [&](uint64_t q) { return index.LowerBound(q); });
  return true;
}

template <typename TopModel>
void PrintDataset(data::DatasetKind kind, size_t n,
                  const rmi::RmiConfig& base) {
  printf("\n=== %s (%zu keys) ===\n", data::DatasetName(kind), n);
  const std::vector<uint64_t> keys = data::Generate(kind, n);
  const std::vector<uint64_t> queries = data::SampleKeys(keys, 200'000);

  std::vector<Row> btree_rows, learned_rows;
  double ref_size = 1.0, ref_lookup = 1.0;

  for (const size_t page : {32, 64, 128, 256, 512}) {
    btree::ReadOnlyBTree tree;
    if (!tree.Build(keys, page).ok()) continue;
    Row row;
    row.config = "page size: " + std::to_string(page);
    row.size_mb = tree.SizeBytes() / 1e6;
    row.model_ns = lif::MeasureNsPerOp(
        queries, 2, [&](uint64_t q) { return tree.FindPage(q); });
    row.lookup_ns = lif::MeasureNsPerOp(
        queries, 2, [&](uint64_t q) { return tree.LowerBound(q); });
    if (page == 128) {
      ref_size = row.size_mb;
      ref_lookup = row.lookup_ns;
    }
    btree_rows.push_back(row);
  }

  // Paper-ratio rows: same keys-per-leaf as 10k..200k models at 200M keys.
  for (const size_t paper_stage2 : {10'000, 50'000, 100'000, 200'000}) {
    const size_t stage2 = std::max<size_t>(
        64, static_cast<size_t>(static_cast<double>(paper_stage2) *
                                static_cast<double>(n) / 200e6));
    Row row;
    if (RunLearned<TopModel>(keys, queries, stage2, base,
                             "2nd stage: " + std::to_string(paper_stage2 / 1000)
                                 + "k-equiv (" + std::to_string(stage2) + ")",
                             &row)) {
      learned_rows.push_back(row);
    }
  }
  // Speed-optimal configuration at this scale (~20 keys per leaf).
  {
    Row row;
    if (RunLearned<TopModel>(keys, queries, std::max<size_t>(64, n / 20),
                             base,
                             "speed-opt (" + std::to_string(n / 20) + ")",
                             &row)) {
      learned_rows.push_back(row);
    }
  }

  lif::Table table({"Config", "Size (MB)", "Lookup (ns)", "Model (ns)"});
  table.AddSection("Btree");
  for (const Row& r : btree_rows) {
    table.AddRow({r.config, lif::Table::WithFactor(r.size_mb, r.size_mb / ref_size),
                  lif::Table::WithFactor(r.lookup_ns, ref_lookup / r.lookup_ns, 0),
                  lif::Table::WithPercent(r.model_ns,
                                          100.0 * r.model_ns / r.lookup_ns)});
  }
  table.AddSection("Learned Index");
  for (const Row& r : learned_rows) {
    table.AddRow({r.config, lif::Table::WithFactor(r.size_mb, r.size_mb / ref_size),
                  lif::Table::WithFactor(r.lookup_ns, ref_lookup / r.lookup_ns, 0),
                  lif::Table::WithPercent(r.model_ns,
                                          100.0 * r.model_ns / r.lookup_ns)});
  }
  table.Print();
}

}  // namespace

int main() {
  const size_t n = lif::BenchScaleKeys();
  printf("Figure 4 reproduction: Learned Index vs B-Tree\n");
  printf("(size/speed factors are relative to the page-128 B-Tree)\n");
  rmi::RmiConfig linear_top;  // defaults; TopModel decides the rest
  PrintDataset<models::LinearModel>(data::DatasetKind::kMaps, n, linear_top);
  PrintDataset<models::LinearModel>(data::DatasetKind::kWeblog, n, linear_top);
  rmi::RmiConfig nn_top;
  nn_top.train.nn.hidden = {8};
  nn_top.train.nn.epochs = 20;
  PrintDataset<models::NeuralNet>(data::DatasetKind::kLognormal, n, nn_top);
  return 0;
}
