// Appendix A: theoretical error scaling. For a model F equal to the true
// generating distribution, the empirical CDF F_N is a binomial variable
// with E[(F(x) - F_N(x))^2] = F(x)(1-F(x))/N (Eq. 3), so the expected
// *position* error |N F(x) - pos(x)| of a constant-size model grows as
// O(sqrt N) — sub-linear, versus the O(N) window growth of a
// constant-size conventional index.
//
// The experiment samples N i.i.d. lognormal keys, evaluates the exact
// lognormal CDF (the "perfect model" the theory assumes) at every sample,
// and reports the mean absolute position error across an N sweep; the
// err/sqrt(N) column should stay roughly flat. A constant-entry sparse
// index's per-page key count (its search window) is shown alongside: it
// grows exactly linearly.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "lif/measure.h"

using namespace li;

int main() {
  printf("Appendix A reproduction: error scaling with data size\n");
  lif::Table table({"N", "mean |N*F(x) - pos|", "err/sqrt(N)",
                    "fixed-index page", "page/N"});

  const size_t kEntries = 4096;  // constant conventional-index budget
  const double mu = 0.0, sigma = 2.0;

  for (const size_t n : {100'000, 200'000, 400'000, 800'000, 1'600'000,
                         3'200'000}) {
    Xorshift128Plus rng(1234);
    std::vector<double> sample(n);
    for (auto& v : sample) v = std::exp(mu + sigma * rng.NextGaussian());
    std::sort(sample.begin(), sample.end());

    // Perfect model: the true lognormal CDF, Phi((ln v - mu)/sigma).
    double err_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double f = 0.5 * std::erfc(-(std::log(sample[i]) - mu) /
                                       (sigma * M_SQRT2));
      err_sum += std::fabs(f * static_cast<double>(n) -
                           static_cast<double>(i));
    }
    const double mean_err = err_sum / static_cast<double>(n);
    const double page = static_cast<double>(n) / kEntries;

    char c1[32], c2[32], c3[32], c4[32], c5[32];
    snprintf(c1, sizeof(c1), "%zu", n);
    snprintf(c2, sizeof(c2), "%.1f", mean_err);
    snprintf(c3, sizeof(c3), "%.4f",
             mean_err / std::sqrt(static_cast<double>(n)));
    snprintf(c4, sizeof(c4), "%.1f", page);
    snprintf(c5, sizeof(c5), "%.6f", page / static_cast<double>(n));
    table.AddRow({c1, c2, c3, c4, c5});
  }
  table.Print();
  printf("(err/sqrt(N) flat -> O(sqrt N) error for a constant-size model\n"
         " that matches the distribution; page/N flat -> O(N) search window\n"
         " for a constant-size conventional index)\n");
  return 0;
}
