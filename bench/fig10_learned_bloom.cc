// Figure 10: learned Bloom filter memory footprint across the FPR range,
// for classifier configurations of increasing capacity — GRU widths
// W in {16, 32, 128} with 32-dim embeddings (plus the n-gram logistic
// model as an extra cheap point) — against the standard Bloom filter.
//
// Default scale trains small GRUs quickly; REPRO_BLOOM_KEYS and
// REPRO_GRU_FULL=1 raise fidelity toward the paper's 1.7M-key setting.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bloom/learned_bloom.h"
#include "classifier/gru.h"
#include "classifier/ngram_logistic.h"
#include "common/random.h"
#include "data/strings.h"
#include "index/existence_index.h"
#include "lif/measure.h"

using namespace li;

namespace {

size_t NumKeys() {
  if (const char* env = getenv("REPRO_BLOOM_KEYS")) {
    const long v = atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 50'000;
}

}  // namespace

int main() {
  const size_t num_keys = NumKeys();
  const bool full_gru = getenv("REPRO_GRU_FULL") != nullptr;
  printf("Figure 10 reproduction: learned Bloom filter memory vs FPR "
         "(%zu keys)\n",
         num_keys);
  data::UrlCorpus corpus = data::GenUrls(num_keys, num_keys);
  // The paper's negative set "is a mixture of random (valid) URLs and
  // whitelisted URLs that could be mistaken for phishing pages", split
  // into train / validation / test.
  std::vector<std::string> negatives = corpus.random_negatives;
  negatives.insert(negatives.end(), corpus.whitelisted.begin(),
                   corpus.whitelisted.end());
  {
    Xorshift128Plus shuffle_rng(5);
    for (size_t i = negatives.size(); i > 1; --i) {
      std::swap(negatives[i - 1], negatives[shuffle_rng.NextBounded(i)]);
    }
  }
  const size_t third = negatives.size() / 3;
  const std::vector<std::string> train_neg(negatives.begin(),
                                           negatives.begin() + third);
  const std::vector<std::string> valid_neg(negatives.begin() + third,
                                           negatives.begin() + 2 * third);
  const std::vector<std::string> test_neg(negatives.begin() + 2 * third,
                                          negatives.end());

  const double fprs[] = {0.02, 0.01, 0.005, 0.001};

  lif::Table table({"Model", "Target FPR", "Size (MB)", "vs Bloom", "FNR",
                    "Test FPR"});

  // Standard Bloom filter line.
  std::vector<double> bloom_mb;
  for (const double fpr : fprs) {
    bloom::BloomFilter plain;
    if (!plain.Init(corpus.keys.size(), fpr).ok()) return 1;
    bloom_mb.push_back(plain.SizeBytes() / 1e6);
    char f[32], s[32];
    snprintf(f, sizeof(f), "%.2f%%", 100.0 * fpr);
    snprintf(s, sizeof(s), "%.3f", bloom_mb.back());
    table.AddRow({"BloomFilter", f, s, "1.00x", "-", "-"});
  }

  // Every candidate is scored through the type-erased ExistenceIndex
  // contract — the same handle the LIF synthesizer returns. Only the FNR
  // (construction detail, not contract) is read before erasure.
  auto run_model = [&](const char* name, auto& model) {
    for (size_t i = 0; i < std::size(fprs); ++i) {
      bloom::LearnedBloomFilter<std::decay_t<decltype(model)>> filter;
      if (!filter.Build(&model, corpus.keys, valid_neg, fprs[i]).ok()) {
        continue;
      }
      const double fnr = filter.fnr();
      const index::AnyExistenceIndex erased(std::move(filter));
      char f[32], s[32], r[32], fn[32], tf[32];
      snprintf(f, sizeof(f), "%.2f%%", 100.0 * fprs[i]);
      snprintf(s, sizeof(s), "%.3f", erased.SizeBytes() / 1e6);
      snprintf(r, sizeof(r), "%.2fx", erased.SizeBytes() / 1e6 / bloom_mb[i]);
      snprintf(fn, sizeof(fn), "%.0f%%", 100.0 * fnr);
      snprintf(tf, sizeof(tf), "%.2f%%",
               100.0 * erased.MeasuredFpr(test_neg));
      table.AddRow({name, f, s, r, fn, tf});
    }
  };

  {
    classifier::NgramConfig ngram_config;
    // Feature-table size scaled to the key count (the model must stay well
    // below the Bloom filter it displaces).
    ngram_config.num_buckets = std::max<size_t>(1024, num_keys / 16);
    classifier::NgramLogistic ngram;
    if (ngram.Train(corpus.keys, train_neg, ngram_config).ok()) {
      run_model("Ngram-LR", ngram);
    }
  }
  const int widths[] = {16, 32, 128};
  for (const int w : widths) {
    if (w == 128 && !full_gru) {
      printf("(skipping W=128 GRU; set REPRO_GRU_FULL=1 to include it)\n");
      continue;
    }
    classifier::GruConfig config;
    config.hidden_dim = w;
    config.embed_dim = 32;
    config.epochs = full_gru ? 2 : 1;
    config.max_train_per_class = full_gru ? 20'000 : 4000;
    classifier::GruClassifier gru;
    if (!gru.Train(corpus.keys, train_neg, config).ok()) continue;
    char name[32];
    snprintf(name, sizeof(name), "W=%d,E=32", w);
    run_model(name, gru);
  }
  table.Print();
  printf("(paper: W=16,E=32 at 1%% FPR -> 36%% smaller than Bloom; at 0.1%% "
         "-> 15%% smaller)\n");
  return 0;
}
