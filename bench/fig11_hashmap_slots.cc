// Figure 11 (Appendix B): model vs random hash in a separate-chaining hash
// map storing 20-byte records, with slot budgets of 75% / 100% / 125% of
// the record count. Reports average lookup ns (single-key and the
// software-pipelined FindBatch), empty-slot bytes (wasted space) and the
// learned/random space factor. Unlike the range-index tables, sizes here
// INCLUDE record storage (Appendix-B accounting). Both map variants are
// built through the PointIndex contract (hash family in the config).

#include <cstdio>
#include <vector>

#include "data/datasets.h"
#include "hash/chained_hash_map.h"
#include "lif/measure.h"

using namespace li;

int main() {
  const size_t n = lif::BenchScaleKeys();
  printf("Figure 11 reproduction: model vs random hash map (%zu records)\n",
         n);
  lif::Table table({"Dataset", "Slots", "Hash Type", "Time (ns)",
                    "Batch (ns)", "Empty Slots (GB)", "Space"});

  for (const auto kind : {data::DatasetKind::kMaps, data::DatasetKind::kWeblog,
                          data::DatasetKind::kLognormal}) {
    const std::vector<uint64_t> keys = data::Generate(kind, n);
    std::vector<hash::Record> records;
    records.reserve(n);
    for (size_t i = 0; i < keys.size(); ++i) {
      records.push_back({keys[i], i, static_cast<uint32_t>(i)});
    }
    const auto probes = data::SampleKeys(keys, 200'000);
    std::vector<const hash::Record*> batch_out(probes.size());

    auto batch_ns = [&](const hash::ChainedHashMap& map) {
      return lif::MeasureBatchNsPerOp(probes.size(), [&] {
        map.FindBatch(probes, batch_out);
        return batch_out.data();
      });
    };

    for (const int pct : {75, 100, 125}) {
      const uint64_t slots = keys.size() * pct / 100;

      hash::ChainedHashMapConfig model_cfg;
      model_cfg.num_slots = slots;
      model_cfg.hash.kind = hash::HashKind::kLearnedCdf;
      model_cfg.hash.cdf_leaf_models =
          std::min<size_t>(100'000, keys.size() / 10);
      hash::ChainedHashMap model_map;
      if (!model_map.Build(records, model_cfg).ok()) continue;

      hash::ChainedHashMapConfig random_cfg;
      random_cfg.num_slots = slots;
      random_cfg.hash.kind = hash::HashKind::kRandom;
      random_cfg.hash.seed = 7;
      hash::ChainedHashMap random_map;
      if (!random_map.Build(records, random_cfg).ok()) continue;

      const double model_ns = lif::MeasureNsPerOp(
          probes, 1, [&](uint64_t q) { return model_map.Find(q) != nullptr; });
      const double random_ns = lif::MeasureNsPerOp(
          probes, 1, [&](uint64_t q) { return random_map.Find(q) != nullptr; });
      const double model_batch_ns = batch_ns(model_map);
      const double random_batch_ns = batch_ns(random_map);
      const double model_empty_gb = model_map.EmptySlotBytes() / 1e9;
      const double random_empty_gb = random_map.EmptySlotBytes() / 1e9;

      char t1[32], t2[32], b1[32], b2[32], e1[32], e2[32], f1[32];
      snprintf(t1, sizeof(t1), "%.0f", model_ns);
      snprintf(t2, sizeof(t2), "%.0f", random_ns);
      snprintf(b1, sizeof(b1), "%.0f", model_batch_ns);
      snprintf(b2, sizeof(b2), "%.0f", random_batch_ns);
      snprintf(e1, sizeof(e1), "%.3f", model_empty_gb);
      snprintf(e2, sizeof(e2), "%.3f", random_empty_gb);
      snprintf(f1, sizeof(f1), "%.2fx",
               random_empty_gb > 0 ? model_empty_gb / random_empty_gb : 0.0);
      table.AddRow({data::DatasetName(kind), std::to_string(pct) + "%",
                    "Model Hash", t1, b1, e1, f1});
      table.AddRow({"", "", "Random Hash", t2, b2, e2, ""});
    }
  }
  table.Print();
  return 0;
}
