// §7 "Beyond Indexing": learned sort vs std::sort across distributions and
// sizes — the CDF-scatter + repair pipeline against introsort.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "data/datasets.h"
#include "lif/measure.h"
#include "sort/learned_sort.h"

using namespace li;

int main() {
  const size_t n = lif::BenchScaleKeys();
  printf("Learned sort vs std::sort\n");
  lif::Table table({"Dataset", "N", "std::sort ms", "learned ms", "speedup",
                    "correct"});

  for (const auto kind : {data::DatasetKind::kMaps, data::DatasetKind::kWeblog,
                          data::DatasetKind::kLognormal}) {
    std::vector<uint64_t> base = data::Generate(kind, n);
    Xorshift128Plus rng(5);
    for (size_t i = base.size(); i > 1; --i) {
      std::swap(base[i - 1], base[rng.NextBounded(i)]);
    }
    std::vector<uint64_t> a = base, b = base;
    Timer t1;
    std::sort(a.begin(), a.end());
    const double std_ms = t1.ElapsedMillis();
    Timer t2;
    const bool ok = sort::LearnedSort(&b).ok();
    const double learned_ms = t2.ElapsedMillis();

    char c2[32], c3[32], c4[32], c5[32];
    snprintf(c2, sizeof(c2), "%zu", n);
    snprintf(c3, sizeof(c3), "%.1f", std_ms);
    snprintf(c4, sizeof(c4), "%.1f", learned_ms);
    snprintf(c5, sizeof(c5), "%.2fx", std_ms / learned_ms);
    table.AddRow({data::DatasetName(kind), c2, c3, c4, c5,
                  ok && a == b ? "yes" : "NO"});
  }
  table.Print();
  return 0;
}
