#!/usr/bin/env python3
"""Markdown link checker for the repo's doc set (stdlib only).

Checks every inline markdown link in the given files/directories:
  * relative file links must resolve to an existing file or directory
    (relative to the containing file);
  * fragment links (#anchor, file.md#anchor) must match a heading in the
    target file, using GitHub's slugification;
  * http(s) links are skipped (no network in CI).

Exit code 0 when every link resolves, 1 otherwise (each broken link is
printed as file:line: message).

Usage: python3 tools/check_links.py README.md ROADMAP.md docs
"""

import os
import re
import sys

# Inline links: [text](target). Images share the syntax; the regex keeps
# the optional leading "!" out of the target. Reference-style links are
# not used in this repo.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->dashes."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def collect_markdown(paths, errors):
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, _, names in os.walk(path):
                files.extend(
                    os.path.join(root, n) for n in names if n.endswith(".md"))
        elif os.path.isfile(path) and path.endswith(".md"):
            files.append(path)
        else:
            errors.append(f"{path}: not a markdown file or directory")
    return sorted(set(files))


def heading_slugs(md_path):
    slugs = set()
    seen = {}
    in_fence = False
    with open(md_path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                slug = github_slug(m.group(1))
                n = seen.get(slug, 0)
                seen[slug] = n + 1
                slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(md_path, errors):
    base = os.path.dirname(md_path)
    in_fence = False
    with open(md_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                target = m.group(1)
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path_part, _, fragment = target.partition("#")
                if path_part:
                    resolved = os.path.normpath(os.path.join(base, path_part))
                    if not os.path.exists(resolved):
                        errors.append(
                            f"{md_path}:{lineno}: broken link -> {target}")
                        continue
                else:
                    resolved = md_path
                if fragment:
                    if not resolved.endswith(".md"):
                        continue  # source-line anchors etc.
                    if fragment not in heading_slugs(resolved):
                        errors.append(
                            f"{md_path}:{lineno}: missing anchor -> {target}")


def main(argv):
    paths = argv[1:] or ["README.md", "ROADMAP.md", "docs"]
    errors = []
    files = collect_markdown(paths, errors)
    if not files and not errors:
        print("check_links: no markdown files found", file=sys.stderr)
        return 1
    for md in files:
        check_file(md, errors)
    for e in errors:
        print(e, file=sys.stderr)
    print(f"check_links: {len(files)} files, "
          f"{'OK' if not errors else f'{len(errors)} broken links'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
