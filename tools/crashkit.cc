// crashkit — the crash-injection workload driver behind
// tests/crash_recovery_test.cc (and usable by hand; see
// docs/DURABILITY.md, "crash matrix").
//
// Two subcommands share one deterministic workload definition, so the
// child that dies and the verifier that judges the wreckage can never
// disagree about what the acknowledged history was:
//
//   crashkit child --mode=M --dir=D --seed=S --ops=N [--crash-mode=C]
//                  [--trigger=T] [--torn-bytes=B] [--fsync-every=F]
//                  [--checkpoint-every=K]
//     Builds a base index, enables durability, then applies the seeded
//     op stream. After each op is acknowledged by the index it appends
//     one byte to D/journal — the ack record the verifier replays
//     against. A CrashFileBackend armed with (C, T) SIGKILLs the
//     process from inside the log's write path: no destructors, no
//     flushes, exactly the state a real crash leaves. Exits 0 if the
//     stream completes without the trigger firing.
//
//   crashkit verify --mode=M --dir=D --seed=S --ops=N
//     Recovers the index from D (snapshot + WAL replay), re-derives the
//     op stream from the seed, reads m = size(D/journal), and demands
//     the recovered live set equal the oracle after m or m+1 ops — the
//     child was single-threaded, so at most one op can be in flight
//     (appended but not yet journaled) at the kill. Every acknowledged
//     write present, no torn record applied, clean Status throughout.
//     Exit 0 = verified, 2 = divergence (a durability bug), 3 = error.
//
// Crash modes map to CrashFileBackend: none, before, after, torn,
// droptail, midsync. The droptail/midsync legs model an OS crash (the
// un-fsync'd page cache dies too) and are only sound with
// --fsync-every=1, where acknowledged implies synced; the SIGKILL-only
// legs exercise group commit at any --fsync-every.

#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "concurrent/concurrent_writable_index.h"
#include "concurrent/sharded_index.h"
#include "data/datasets.h"
#include "dynamic/delta_range_index.h"
#include "rmi/rmi.h"
#include "wal/file_backend.h"
#include "wal/wal.h"

namespace li {
namespace {

using DeltaRmi = dynamic::DeltaRangeIndex<rmi::LinearRmi>;
using ConcRmi = concurrent::ConcurrentWritableIndex<rmi::LinearRmi>;
using ShardedRmi = concurrent::ShardedIndex<ConcRmi>;

constexpr size_t kBaseKeys = 20'000;
constexpr uint64_t kKeySpace = 1ULL << 26;  // dense enough for erase hits

struct Options {
  std::string cmd;
  std::string mode = "delta";  // delta | conc | sharded
  std::string dir;
  uint64_t seed = 1;
  uint64_t ops = 2'000;
  std::string crash_mode = "none";
  uint64_t trigger = 0;
  size_t torn_bytes = 11;
  size_t fsync_every = 1;
  uint64_t checkpoint_every = 0;
};

[[noreturn]] void Die(const std::string& msg) {
  std::fprintf(stderr, "crashkit: %s\n", msg.c_str());
  std::exit(3);
}

void CheckOk(const Status& st, const char* what) {
  if (!st.ok()) Die(std::string(what) + ": " + std::string(st.message()));
}

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

Options Parse(int argc, char** argv) {
  if (argc < 2) Die("usage: crashkit child|verify --mode=... --dir=...");
  Options o;
  o.cmd = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (ParseFlag(arg, "mode", &o.mode)) continue;
    if (ParseFlag(arg, "dir", &o.dir)) continue;
    if (ParseFlag(arg, "crash-mode", &o.crash_mode)) continue;
    if (ParseFlag(arg, "seed", &v)) { o.seed = std::strtoull(v.c_str(), nullptr, 10); continue; }
    if (ParseFlag(arg, "ops", &v)) { o.ops = std::strtoull(v.c_str(), nullptr, 10); continue; }
    if (ParseFlag(arg, "trigger", &v)) { o.trigger = std::strtoull(v.c_str(), nullptr, 10); continue; }
    if (ParseFlag(arg, "torn-bytes", &v)) { o.torn_bytes = std::strtoull(v.c_str(), nullptr, 10); continue; }
    if (ParseFlag(arg, "fsync-every", &v)) { o.fsync_every = std::strtoull(v.c_str(), nullptr, 10); continue; }
    if (ParseFlag(arg, "checkpoint-every", &v)) { o.checkpoint_every = std::strtoull(v.c_str(), nullptr, 10); continue; }
    Die("unknown flag: " + arg);
  }
  if (o.dir.empty()) Die("--dir is required");
  return o;
}

wal::CrashFileBackend::Mode CrashModeOf(const std::string& name) {
  if (name == "none") return wal::CrashFileBackend::Mode::kNone;
  if (name == "before") return wal::CrashFileBackend::Mode::kBeforeWrite;
  if (name == "after") return wal::CrashFileBackend::Mode::kAfterWrite;
  if (name == "torn") return wal::CrashFileBackend::Mode::kTornWrite;
  if (name == "droptail") return wal::CrashFileBackend::Mode::kDropTail;
  if (name == "midsync") return wal::CrashFileBackend::Mode::kDropBeforeSync;
  Die("unknown --crash-mode: " + name);
}

// ---- The shared workload definition ----
// One op: draw a key, then an action (1-in-4 erase). The rng consumption
// order here IS the protocol — child and verifier both call this.

struct Op {
  uint64_t key;
  bool erase;
};

Op NextOp(Xorshift128Plus& rng) {
  Op op;
  op.key = rng.NextBounded(kKeySpace);
  op.erase = rng.NextBounded(4) == 0;
  return op;
}

std::vector<uint64_t> BaseKeys(uint64_t seed) {
  auto keys = data::GenLognormal(kBaseKeys, seed);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

std::string SnapPath(const Options& o) { return o.dir + "/base.snap"; }
std::string WalPath(const Options& o) { return o.dir + "/log.wal"; }
std::string ShardDir(const Options& o) { return o.dir + "/shards"; }
std::string JournalPath(const Options& o) { return o.dir + "/journal"; }

ShardedRmi::Config ShardedConfig() {
  ShardedRmi::Config cfg;
  cfg.num_shards = 3;
  cfg.inner.base.num_leaf_models = 64;
  // Rebalancing on, with thresholds low enough that a long child run
  // crosses a split — crash points inside the cutover protocol are part
  // of the matrix, not a special case.
  cfg.rebalance.enabled = true;
  cfg.rebalance.max_imbalance = 1.5;
  cfg.rebalance.min_split_keys = 2'048;
  cfg.rebalance.check_stride = 256;
  return cfg;
}

// ---- child ----

int RunChild(const Options& o) {
  if (::mkdir(o.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    Die("mkdir " + o.dir + ": " + std::strerror(errno));
  }
  wal::CrashFileBackend::Plan plan;
  plan.mode = CrashModeOf(o.crash_mode);
  plan.trigger_at = o.trigger;
  plan.torn_bytes = o.torn_bytes;
  plan.kill_process = true;  // SIGKILL from inside the write path
  wal::CrashFileBackend backend(plan);

  wal::DurabilityConfig dcfg;
  dcfg.fsync_every_n = o.fsync_every;
  dcfg.backend = &backend;

  const auto base = BaseKeys(o.seed);

  DeltaRmi delta;
  ConcRmi conc;
  ShardedRmi sharded;
  if (o.mode == "delta") {
    DeltaRmi::Config cfg;
    cfg.base.num_leaf_models = 64;
    CheckOk(delta.Build(base, cfg), "build");
    CheckOk(delta.WriteSnapshot(SnapPath(o)), "base snapshot");
    dcfg.path = WalPath(o);
    CheckOk(delta.EnableDurability(dcfg), "enable durability");
  } else if (o.mode == "conc") {
    ConcRmi::Config cfg;
    cfg.base.num_leaf_models = 64;
    CheckOk(conc.Build(base, cfg), "build");
    CheckOk(conc.WriteSnapshot(SnapPath(o)), "base snapshot");
    dcfg.path = WalPath(o);
    CheckOk(conc.EnableDurability(dcfg), "enable durability");
  } else if (o.mode == "sharded") {
    CheckOk(sharded.Build(base, ShardedConfig()), "build");
    dcfg.path = ShardDir(o);
    CheckOk(sharded.EnableDurability(dcfg), "enable durability");
  } else {
    Die("unknown --mode: " + o.mode);
  }

  // The ack journal: one byte appended after each op returns. No fsync —
  // the injected crashes never touch this fd, and the SIGKILL model
  // keeps the page cache alive.
  const int jfd = ::open(JournalPath(o).c_str(),
                         O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  if (jfd < 0) Die("open journal: " + std::string(std::strerror(errno)));

  Xorshift128Plus rng(o.seed * 7919 + 1);
  for (uint64_t i = 0; i < o.ops; ++i) {
    const Op op = NextOp(rng);
    // The index call either returns (acknowledged — the WAL append
    // succeeded) or never comes back (the backend killed us).
    if (o.mode == "delta") {
      op.erase ? delta.Erase(op.key) : delta.Insert(op.key);
      CheckOk(delta.wal_status(), "wal_status");
    } else if (o.mode == "conc") {
      op.erase ? conc.Erase(op.key) : conc.Insert(op.key);
      CheckOk(conc.wal_status(), "wal_status");
    } else {
      op.erase ? sharded.Erase(op.key) : sharded.Insert(op.key);
      CheckOk(sharded.wal_status(), "wal_status");
    }
    if (::write(jfd, "a", 1) != 1) Die("journal append failed");
    if (o.checkpoint_every != 0 && (i + 1) % o.checkpoint_every == 0) {
      if (o.mode == "delta") {
        CheckOk(delta.WriteSnapshot(SnapPath(o)), "checkpoint");
      } else if (o.mode == "conc") {
        CheckOk(conc.WriteSnapshot(SnapPath(o)), "checkpoint");
      } else {
        CheckOk(sharded.Checkpoint(), "checkpoint");
      }
    }
  }
  // Stream completed without the trigger firing; quiesce so the verify
  // pass (or a rerun with a later trigger) sees a clean end state.
  if (o.mode == "sharded") sharded.WaitForRebalances();
  ::close(jfd);
  return 0;
}

// ---- verify ----

int64_t FileBytes(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<int64_t>(st.st_size)
                                        : -1;
}

int Mismatch(const std::string& what, uint64_t m, size_t got,
             size_t want_m, size_t want_m1) {
  std::fprintf(stderr,
               "crashkit: DIVERGENCE (%s): journal acked %llu ops, "
               "recovered %zu live keys, oracle wants %zu (m) or %zu "
               "(m+1)\n",
               what.c_str(), static_cast<unsigned long long>(m), got,
               want_m, want_m1);
  return 2;
}

int RunVerify(const Options& o) {
  const int64_t m_bytes = FileBytes(JournalPath(o));
  if (m_bytes < 0) Die("no journal at " + JournalPath(o));
  const uint64_t m = static_cast<uint64_t>(m_bytes);
  if (m > o.ops) Die("journal acked more ops than the stream holds");

  // Oracle after m ops, and the one-op lookahead (the in-flight op the
  // crash may or may not have persisted past the ack point).
  const auto base = BaseKeys(o.seed);
  std::set<uint64_t> oracle(base.begin(), base.end());
  Xorshift128Plus rng(o.seed * 7919 + 1);
  for (uint64_t i = 0; i < m; ++i) {
    const Op op = NextOp(rng);
    op.erase ? (void)oracle.erase(op.key) : (void)oracle.insert(op.key);
  }
  const std::vector<uint64_t> want_m(oracle.begin(), oracle.end());
  std::vector<uint64_t> want_m1 = want_m;
  if (m < o.ops) {
    const Op op = NextOp(rng);
    op.erase ? (void)oracle.erase(op.key) : (void)oracle.insert(op.key);
    want_m1.assign(oracle.begin(), oracle.end());
  }

  // Recover. Every Status must be clean: a torn tail is a normal
  // outcome, never an error, never UB.
  std::vector<uint64_t> got;
  if (o.mode == "delta" || o.mode == "conc") {
    wal::DurabilityConfig dcfg;
    dcfg.path = WalPath(o);
    dcfg.fsync_every_n = o.fsync_every;
    if (o.mode == "delta") {
      auto re = DeltaRmi::OpenSnapshot(SnapPath(o));
      if (!re.ok()) Die("open snapshot: " + std::string(re.status().message()));
      DeltaRmi rec = re.take();
      CheckOk(rec.RecoverFromWal(dcfg), "recover");
      got = rec.Scan(0, rec.size() + 16);
    } else {
      auto re = ConcRmi::OpenSnapshot(SnapPath(o));
      if (!re.ok()) Die("open snapshot: " + std::string(re.status().message()));
      ConcRmi rec = re.take();
      CheckOk(rec.RecoverFromWal(dcfg), "recover");
      got = rec.Scan(0, rec.size() + 16);
    }
  } else if (o.mode == "sharded") {
    wal::DurabilityConfig dcfg;
    dcfg.path = ShardDir(o);
    dcfg.fsync_every_n = o.fsync_every;
    auto re = ShardedRmi::RecoverDurable(dcfg);
    if (!re.ok()) Die("recover: " + std::string(re.status().message()));
    ShardedRmi rec = re.take();
    got = rec.Scan(0, rec.size() + 16);
  } else {
    Die("unknown --mode: " + o.mode);
  }

  if (got != want_m && got != want_m1) {
    // Pinpoint the first divergence for the bug report.
    const std::vector<uint64_t>& close =
        (got.size() == want_m1.size()) ? want_m1 : want_m;
    for (size_t i = 0; i < std::min(got.size(), close.size()); ++i) {
      if (got[i] != close[i]) {
        std::fprintf(stderr,
                     "crashkit: first divergence at rank %zu: got %llu "
                     "want %llu\n",
                     i, static_cast<unsigned long long>(got[i]),
                     static_cast<unsigned long long>(close[i]));
        break;
      }
    }
    return Mismatch(o.mode, m, got.size(), want_m.size(), want_m1.size());
  }
  std::printf("crashkit: verified mode=%s m=%llu live=%zu (%s)\n",
              o.mode.c_str(), static_cast<unsigned long long>(m),
              got.size(), got == want_m ? "exact" : "one in flight");
  return 0;
}

}  // namespace
}  // namespace li

int main(int argc, char** argv) {
  const li::Options o = li::Parse(argc, argv);
  if (o.cmd == "child") return li::RunChild(o);
  if (o.cmd == "verify") return li::RunVerify(o);
  li::Die("unknown subcommand: " + o.cmd);
}
