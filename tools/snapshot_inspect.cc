// snapshot_inspect: dump a snapshot file's header and section table —
// names, kinds, offsets, sizes, stored CRCs — and optionally recompute
// every payload checksum. The debugging companion to the format in
// docs/PERSISTENCE.md: when an OpenSnapshot fails, this shows which
// layer (header, table, payload) disagrees and where.
//
//   snapshot_inspect <file.snap>            dump header + section table
//   snapshot_inspect --verify <file.snap>   also recompute payload CRCs

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "snapshot/format.h"
#include "snapshot/snapshot.h"

namespace li {
namespace {

int Inspect(const char* path, bool verify) {
  // Envelope checks (magic, version, header/table CRCs, bounds) run
  // unconditionally in Open; payload CRCs only under --verify.
  auto reader = snapshot::SnapshotReader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s: %s\n", path, reader.status().message().c_str());
    return 1;
  }
  const snapshot::FileHeader& h = reader.value().header();
  std::printf("%s\n", path);
  std::printf("  magic         0x%016" PRIx64 "  (\"LISNAP01\")\n", h.magic);
  std::printf("  version       %" PRIu32 "\n", h.version);
  std::printf("  file_size     %" PRIu64 " bytes\n", h.file_size);
  std::printf("  sections      %" PRIu32 "  (table at offset %" PRIu64 ")\n",
              h.section_count, h.table_offset);
  std::printf("  header_crc    0x%08" PRIx32 "   table_crc 0x%08" PRIx32 "\n",
              h.header_crc, h.table_crc);
  std::printf("\n  %-36s %-9s %10s %12s %10s\n", "name", "kind", "offset",
              "size", "crc32c");
  for (const snapshot::SectionEntry& e : reader.value().sections()) {
    std::printf("  %-36s %-9s %10" PRIu64 " %12" PRIu64 " 0x%08" PRIx32 "\n",
                e.name,
                snapshot::SectionKindName(
                    static_cast<snapshot::SectionKind>(e.kind)),
                e.offset, e.size, e.crc);
  }
  if (!verify) return 0;

  int bad = 0;
  for (const snapshot::SectionEntry& e : reader.value().sections()) {
    const Status st = reader.value().VerifySection(e.name);
    if (st.ok()) {
      std::printf("  verify %-36s OK\n", e.name);
    } else {
      std::printf("  verify %-36s FAILED: %s\n", e.name,
                  st.message().c_str());
      ++bad;
    }
  }
  if (bad != 0) {
    std::fprintf(stderr, "%d section(s) failed payload verification\n", bad);
    return 1;
  }
  std::printf("all payloads verified\n");
  return 0;
}

}  // namespace
}  // namespace li

int main(int argc, char** argv) {
  bool verify = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: snapshot_inspect [--verify] <file.snap>\n");
    return 2;
  }
  return li::Inspect(path, verify);
}
