// snapshot_inspect: dump an on-disk persistence artifact. Handed a
// snapshot, it prints the header and section table — names, kinds,
// offsets, sizes, stored CRCs — and optionally recomputes every payload
// checksum. Handed a WAL file (auto-detected from the leading magic), it
// walks the record stream and reports the record count, LSN range, and —
// for a torn or corrupt tail — the byte offset of the first record that
// fails validation. The debugging companion to docs/PERSISTENCE.md and
// docs/DURABILITY.md: when an OpenSnapshot or RecoverFromWal surprises,
// this shows which layer disagrees and where.
//
//   snapshot_inspect <file.snap>            dump header + section table
//   snapshot_inspect --verify <file.snap>   also recompute payload CRCs
//   snapshot_inspect <file.wal>             dump WAL summary + tail state

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "rangefilter/filter_meta.h"
#include "snapshot/format.h"
#include "snapshot/snapshot.h"
#include "wal/wal.h"
#include "wal/wal_format.h"

namespace li {
namespace {

/// Reads the first 8 bytes so one tool serves both formats without the
/// caller having to know which artifact a stray file in a durability
/// directory is.
bool LooksLikeWal(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  uint64_t magic = 0;
  const bool got = std::fread(&magic, sizeof(magic), 1, f) == 1;
  std::fclose(f);
  return got && magic == wal::kWalMagic;
}

int InspectWal(const char* path) {
  // A null visitor makes Replay a pure validation scan; per-record type
  // counts ride along in a counting visitor instead.
  uint64_t inserts = 0, erases = 0;
  auto result = wal::Replay(
      path, [&](wal::WalRecordType t, uint64_t, const void*, size_t) {
        t == wal::WalRecordType::kInsert ? ++inserts : ++erases;
        return Status::OK();
      });
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", path, result.status().message().c_str());
    return 1;
  }
  const wal::WalReplayResult& r = result.value();
  std::printf("%s\n", path);
  std::printf("  magic         0x%016" PRIx64 "  (\"LIWAL001\")\n",
              wal::kWalMagic);
  std::printf("  base_lsn      %" PRIu64 "\n", r.base_lsn);
  std::printf("  records       %" PRIu64 "  (%" PRIu64 " insert, %" PRIu64
              " erase)\n",
              r.records, inserts, erases);
  if (r.records != 0) {
    std::printf("  lsn range     [%" PRIu64 ", %" PRIu64 "]\n",
                r.base_lsn + 1, r.last_lsn);
  } else {
    std::printf("  lsn range     (empty)\n");
  }
  std::printf("  valid_bytes   %" PRIu64 " of %" PRIu64 "\n", r.valid_bytes,
              r.file_bytes);
  if (r.torn_tail) {
    std::printf("  tail          TORN: first invalid record at offset %" PRIu64
                " (%" PRIu64 " trailing bytes ignored)\n",
                r.valid_bytes, r.file_bytes - r.valid_bytes);
  } else {
    std::printf("  tail          clean\n");
  }
  // A torn tail is a normal post-crash artifact (recovery truncates it),
  // not a tool failure.
  return 0;
}

int Inspect(const char* path, bool verify) {
  if (LooksLikeWal(path)) return InspectWal(path);
  // Envelope checks (magic, version, header/table CRCs, bounds) run
  // unconditionally in Open; payload CRCs only under --verify.
  auto reader = snapshot::SnapshotReader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s: %s\n", path, reader.status().message().c_str());
    return 1;
  }
  const snapshot::FileHeader& h = reader.value().header();
  std::printf("%s\n", path);
  std::printf("  magic         0x%016" PRIx64 "  (\"LISNAP01\")\n", h.magic);
  std::printf("  version       %" PRIu32 "\n", h.version);
  std::printf("  file_size     %" PRIu64 " bytes\n", h.file_size);
  std::printf("  sections      %" PRIu32 "  (table at offset %" PRIu64 ")\n",
              h.section_count, h.table_offset);
  std::printf("  header_crc    0x%08" PRIx32 "   table_crc 0x%08" PRIx32 "\n",
              h.header_crc, h.table_crc);
  std::printf("\n  %-36s %-9s %10s %12s %10s\n", "name", "kind", "offset",
              "size", "crc32c");
  for (const snapshot::SectionEntry& e : reader.value().sections()) {
    std::printf("  %-36s %-9s %10" PRIu64 " %12" PRIu64 " 0x%08" PRIx32 "\n",
                e.name,
                snapshot::SectionKindName(
                    static_cast<snapshot::SectionKind>(e.kind)),
                e.offset, e.size, e.crc);
  }

  // Range-filter summaries: every kRangeFilterMeta section is a
  // construction-tagged geometry POD (rangefilter/filter_meta.h), so the
  // tool can say what kind of filter lives in the file and how its bits
  // are spent without loading the filter itself.
  for (const snapshot::SectionEntry& e : reader.value().sections()) {
    if (static_cast<snapshot::SectionKind>(e.kind) !=
        snapshot::SectionKind::kRangeFilterMeta) {
      continue;
    }
    rangefilter::RangeFilterSnapshotMeta meta;
    if (const Status st = reader.value().GetPod(e.name, &meta); !st.ok()) {
      std::fprintf(stderr, "  %s: unreadable range-filter meta: %s\n",
                   e.name, st.message().c_str());
      return 1;
    }
    std::printf("\n  range filter %s\n", e.name);
    std::printf("    kind        %s\n",
                rangefilter::FilterKindName(
                    static_cast<rangefilter::FilterKind>(meta.filter_kind)));
    std::printf("    keys        %" PRIu64 "\n", meta.num_keys);
    std::printf("    segments    %" PRIu64 "\n", meta.num_segments);
    std::printf("    bitmap_bits %" PRIu64 "\n", meta.bitmap_bits);
    std::printf("    domain      [%" PRIu64 ", %" PRIu64 "]\n",
                meta.domain_lo, meta.domain_hi);
    if (meta.block_width != 0) {
      std::printf("    block_width %" PRIu64 "\n", meta.block_width);
    }
    std::printf("    bits/key    %.2f configured, %.2f actual\n",
                meta.bits_per_key,
                meta.num_keys == 0
                    ? 0.0
                    : static_cast<double>(meta.bitmap_bits) /
                          static_cast<double>(meta.num_keys));
  }
  if (!verify) return 0;

  int bad = 0;
  for (const snapshot::SectionEntry& e : reader.value().sections()) {
    const Status st = reader.value().VerifySection(e.name);
    if (st.ok()) {
      std::printf("  verify %-36s OK\n", e.name);
    } else {
      std::printf("  verify %-36s FAILED: %s\n", e.name,
                  st.message().c_str());
      ++bad;
    }
  }
  if (bad != 0) {
    std::fprintf(stderr, "%d section(s) failed payload verification\n", bad);
    return 1;
  }
  std::printf("all payloads verified\n");
  return 0;
}

}  // namespace
}  // namespace li

int main(int argc, char** argv) {
  bool verify = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: snapshot_inspect [--verify] <file.snap|file.wal>\n");
    return 2;
  }
  return li::Inspect(path, verify);
}
